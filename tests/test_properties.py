"""Property-based differential tests (hypothesis).

These encode the paper's safety contracts:

* every static detector is conservative — an exact (wave-model)
  deadlock is never certified away;
* the refined algorithm only ever removes alarms relative to naive;
* the Lemma-1 unroll never lets the static detectors certify away an
  exact deadlock of the original (pre-unroll) graph;
* derived orderings/co-executability facts are sound against the
  reachable wave space;
* Lemma 3's count balance implies stall freedom on unconditional
  programs;
* runtime (interpreter) deadlocks are always predicted statically;
* the parser/pretty-printer round-trip is the identity.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.coexec import compute_coexec
from repro.analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    k_pairs_analysis,
)
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.constraint4 import constraint4_deadlock_analysis
from repro.analysis.orderings import compute_orderings
from repro.analysis.refined import refined_deadlock_analysis
from repro.analysis.stalls import lemma3_stall_analysis
from repro.interp.scheduler import run_program
from repro.lang.ast_nodes import (
    Accept,
    Assign,
    Condition,
    For,
    If,
    Null,
    Program,
    Send,
    TaskDecl,
    While,
)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.reductions.cnf import random_cnf
from repro.reductions.dpll import is_satisfiable
from repro.reductions.theorem2 import (
    build_theorem2_program,
    find_unsequenceable_cycle,
)
from repro.reductions.theorem3 import (
    build_theorem3_graph,
    find_constraint2_cycle,
)
from repro.syncgraph.build import build_sync_graph
from repro.transforms.branch_merge import merge_branch_rendezvous
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.waves.wave import initial_waves, next_waves

# --------------------------------------------------------------------------
# program strategies
# --------------------------------------------------------------------------

N_TASKS = 3
MESSAGES = ["m0", "m1"]
TASKS = [f"t{i}" for i in range(N_TASKS)]


def _leaf(task_index: int) -> st.SearchStrategy:
    sends = [
        Send(task=TASKS[j], message=m)
        for j in range(N_TASKS)
        if j != task_index
        for m in MESSAGES
    ]
    accepts = [Accept(message=m) for m in MESSAGES]
    return st.sampled_from(sends + accepts + [Null()])


def _stmt(task_index: int, depth: int) -> st.SearchStrategy:
    leaf = _leaf(task_index)
    if depth <= 0:
        return leaf
    inner = st.lists(_stmt(task_index, depth - 1), min_size=1, max_size=2)
    compound = st.one_of(
        st.builds(
            If,
            condition=st.just(Condition.unknown()),
            then_body=inner.map(tuple),
            else_body=st.lists(
                _stmt(task_index, depth - 1), min_size=0, max_size=1
            ).map(tuple),
        ),
        st.builds(
            While,
            condition=st.just(Condition.unknown()),
            body=inner.map(tuple),
        ),
    )
    return st.one_of(leaf, leaf, compound)  # bias toward leaves


@st.composite
def small_programs(draw, with_loops: bool = True) -> Program:
    tasks = []
    for i in range(N_TASKS):
        depth = 1 if with_loops else 0
        body = draw(
            st.lists(_stmt(i, depth), min_size=0, max_size=3).map(tuple)
        )
        tasks.append(TaskDecl(name=TASKS[i], body=body))
    return Program(name="prop", tasks=tuple(tasks))


FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DETECTORS = [
    naive_deadlock_analysis,
    refined_deadlock_analysis,
    constraint4_deadlock_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    combined_pairs_analysis,
    lambda graph: k_pairs_analysis(graph, k=3),
]


# --------------------------------------------------------------------------
# round trip
# --------------------------------------------------------------------------


@FAST
@given(small_programs())
def test_parse_pretty_roundtrip(program):
    assert parse_program(pretty(program)) == program


# The basic strategy only exercises send/accept/null under ?-guarded
# if/while.  The full surface grammar also has for loops with static
# bounds, assignments, accepts that bind a variable, and named (and
# negated) branch conditions — the constructs the co-dependent
# transform and the repair generator rewrite, so their round-trip is
# what keeps RepairCandidate.source faithful.

_VARS = ["v0", "v1"]


def _rich_leaf(task_index: int) -> st.SearchStrategy:
    sends = [
        Send(task=TASKS[j], message=m)
        for j in range(N_TASKS)
        if j != task_index
        for m in MESSAGES
    ]
    accepts = [Accept(message=m) for m in MESSAGES]
    accepts += [Accept(message=m, binds=_VARS[0]) for m in MESSAGES]
    assigns = [Assign(var=v) for v in _VARS]
    return st.sampled_from(sends + accepts + assigns + [Null()])


def _conditions() -> st.SearchStrategy:
    return st.sampled_from(
        [Condition.unknown()]
        + [
            Condition.of_var(v, negated)
            for v in _VARS
            for negated in (False, True)
        ]
    )


def _rich_stmt(task_index: int, depth: int) -> st.SearchStrategy:
    leaf = _rich_leaf(task_index)
    if depth <= 0:
        return leaf
    inner = st.lists(
        _rich_stmt(task_index, depth - 1), min_size=1, max_size=2
    ).map(tuple)
    maybe_empty = st.lists(
        _rich_stmt(task_index, depth - 1), min_size=0, max_size=1
    ).map(tuple)
    compound = st.one_of(
        st.builds(
            If,
            condition=_conditions(),
            then_body=inner,
            else_body=maybe_empty,
        ),
        st.builds(While, condition=_conditions(), body=inner),
        st.builds(
            For,
            var=st.just("i"),
            lower=st.integers(min_value=0, max_value=2),
            upper=st.integers(min_value=0, max_value=3),
            body=inner,
        ),
    )
    return st.one_of(leaf, leaf, compound)


@st.composite
def rich_programs(draw) -> Program:
    tasks = []
    for i in range(N_TASKS):
        body = draw(
            st.lists(_rich_stmt(i, 1), min_size=0, max_size=3).map(tuple)
        )
        tasks.append(TaskDecl(name=TASKS[i], body=body))
    return Program(name="rich", tasks=tuple(tasks))


@FAST
@given(rich_programs())
def test_parse_pretty_roundtrip_full_grammar(program):
    text = pretty(program)
    reparsed = parse_program(text)
    assert reparsed == program
    assert pretty(reparsed) == text  # pretty is idempotent


def _all_corpus_sources():
    from repro.workloads import corpus as paper_module
    from repro.workloads.adl_corpus import (
        adl_corpus,
        lint_corpus,
        repair_corpus,
    )

    pairs = [
        (f"paper:{name}", source)
        for name, _figure, source, *_ in paper_module._SOURCES
    ]
    for tag, entries in (
        ("adl", adl_corpus()),
        ("lint", lint_corpus()),
        ("repair", repair_corpus()),
    ):
        for name, entry in sorted(entries.items()):
            pairs.append((f"{tag}:{name}", entry.source))
    return pairs


@pytest.mark.parametrize(
    "name,source", _all_corpus_sources(), ids=lambda v: v if ":" in str(v) else ""
)
def test_every_corpus_program_round_trips(name, source):
    """parse∘pretty is the identity and pretty is idempotent on every
    shipped corpus — paper figures, showcase ADL, lint showcase (which
    includes deliberately *invalid* programs that must still round-trip
    at the syntax level), and the convicted repair corpus."""
    program = parse_program(source)
    text = pretty(program)
    assert parse_program(text) == program
    assert pretty(parse_program(text)) == text


# --------------------------------------------------------------------------
# conservativeness (safety) of every detector
# --------------------------------------------------------------------------


@FAST
@given(small_programs())
def test_detectors_never_miss_exact_deadlocks(program):
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    exact = explore(graph, state_limit=60_000)
    if not exact.has_deadlock:
        return
    for detector in DETECTORS:
        report = detector(graph)
        assert not report.deadlock_free, (
            f"{report.algorithm} certified a program with an exact "
            f"deadlock:\n{pretty(program)}"
        )


@FAST
@given(small_programs())
def test_refined_family_alarms_subset_of_naive(program):
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    if naive_deadlock_analysis(graph).deadlock_free:
        for detector in DETECTORS[1:]:
            assert detector(graph).deadlock_free


# --------------------------------------------------------------------------
# Lemma 1: the unroll transform is sound for the *static* analysis
# --------------------------------------------------------------------------
#
# Lemma 1 guarantees that the guarded-copy unroll preserves every
# deadlock cycle the CLG method looks for.  It does NOT make the
# unrolled graph wave-equivalent to the original: bounding a while loop
# at two iterations can drop an exact deadlock that needs a third (see
# the regression below).  The sound, testable directions are:
#
# * an exact deadlock of the ORIGINAL graph is never certified away by
#   the static detectors running on the unrolled graph;
# * unrolling never *loses* static convictions relative to the exact
#   semantics (covered by test_detectors_never_miss_exact_deadlocks on
#   the transformed graph);
# * for programs the unroll does not approximate (loop-free, or only
#   small static for loops), exact verdicts agree.


@FAST
@given(small_programs(with_loops=True))
def test_unroll_never_certifies_away_exact_deadlocks(program):
    before = explore(build_sync_graph(program), state_limit=60_000)
    if not before.has_deadlock:
        return
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    for detector in (naive_deadlock_analysis, refined_deadlock_analysis):
        report = detector(graph)
        assert not report.deadlock_free, (
            f"{report.algorithm} certified the unrolled form of a "
            f"program with an exact deadlock:\n{pretty(program)}"
        )


@FAST
@given(small_programs(with_loops=False))
def test_unroll_is_identity_on_loop_free_programs(program):
    transformed, changed = remove_loops(program)
    assert not changed
    assert transformed == program


def test_unroll_can_drop_exact_deadlocks_regression():
    """The 2-copy unroll is not wave-equivalent (discovered by hypothesis).

    t0's while loop must accept (t0, m0) three times for every sender
    to proceed, but the unrolled form provides only two accepts — so
    the deadlock reachable in the original graph has no counterpart in
    the unrolled one.  The pipeline stays sound because the static
    detectors still convict the unrolled graph, and analyze(exact=True)
    explores the pre-unroll graph for approximated programs.
    """
    import repro

    source = """
        program unrollgap;
        task t0 is begin
            if ? then send t1.m1; end if;
            while ? loop accept m0; end loop;
            send t1.m0;
        end;
        task t1 is begin send t0.m0; accept m0; send t0.m0; end;
        task t2 is begin send t0.m0; end;
    """
    program = parse_program(source)
    transformed, changed = remove_loops(program)
    assert changed
    before = explore(build_sync_graph(program), state_limit=60_000)
    after = explore(build_sync_graph(transformed), state_limit=60_000)
    assert before.has_deadlock and not before.limited
    assert not after.has_deadlock  # the unroll dropped the deadlock...
    # ...but the static detectors stay conservative on the unrolled graph
    assert not refined_deadlock_analysis(
        build_sync_graph(transformed)
    ).deadlock_free
    # ...and the exact pipeline explores the pre-unroll graph
    result = repro.analyze(source, exact=True)
    assert not result.deadlock.deadlock_free
    assert result.deadlock.stats["explored_pre_unroll_graph"]


# --------------------------------------------------------------------------
# soundness of the derived facts
# --------------------------------------------------------------------------


def _co_waiting_pairs(graph, state_limit=60_000):
    """All unordered node pairs that wait together on some feasible wave."""
    from collections import deque

    seen = set()
    pairs = set()
    queue = deque()
    for wave in initial_waves(graph):
        if wave not in seen:
            seen.add(wave)
            queue.append(wave)
    while queue:
        wave = queue.popleft()
        real = wave.real_nodes()
        for i, a in enumerate(real):
            for b in real[i + 1 :]:
                pairs.add(frozenset((a, b)))
        for nxt in next_waves(graph, wave):
            if nxt not in seen and len(seen) < state_limit:
                seen.add(nxt)
                queue.append(nxt)
    return pairs


@FAST
@given(small_programs(with_loops=False))
def test_sequenceable_nodes_never_co_wait(program):
    graph = build_sync_graph(program)
    orderings = compute_orderings(graph)
    co_waiting = _co_waiting_pairs(graph)
    for a in graph.rendezvous_nodes:
        for b in orderings.sequenceable_with(a):
            assert frozenset((a, b)) not in co_waiting, (
                f"sequenceable pair co-waits: {a} / {b}\n{pretty(program)}"
            )


@FAST
@given(small_programs(with_loops=False))
def test_not_coexec_nodes_never_co_wait(program):
    graph = build_sync_graph(program)
    coexec = compute_coexec(graph)
    co_waiting = _co_waiting_pairs(graph)
    for a in graph.rendezvous_nodes:
        for b in coexec.not_coexec_with(a):
            assert frozenset((a, b)) not in co_waiting


# --------------------------------------------------------------------------
# Lemma 3 as a property
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_lemma3_balance_implies_no_stall(program):
    report = lemma3_stall_analysis(program)
    if not report.stall_free:
        return
    exact = explore(build_sync_graph(program), state_limit=60_000)
    assert not exact.has_stall, pretty(program)


# --------------------------------------------------------------------------
# runtime vs static
# --------------------------------------------------------------------------


@FAST
@given(small_programs(), st.integers(min_value=0, max_value=7))
def test_runtime_deadlocks_predicted_statically(program, seed):
    result = run_program(program, seed=seed, max_loop_iters=3)
    if result.status != "stuck" or not result.is_deadlock:
        return
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    exact = explore(graph, state_limit=60_000)
    assert exact.has_anomaly, pretty(program)
    report = refined_deadlock_analysis(graph)
    if exact.has_deadlock:
        assert not report.deadlock_free


# --------------------------------------------------------------------------
# branch merge is anomaly preserving
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_branch_merge_preserves_anomalies(program):
    merged, count = merge_branch_rendezvous(program)
    if count == 0:
        return
    before = explore(build_sync_graph(program), state_limit=60_000)
    after = explore(build_sync_graph(merged), state_limit=60_000)
    assert before.has_anomaly <= after.has_anomaly, pretty(program)


# --------------------------------------------------------------------------
# transform differential properties (repair-transform safety)
# --------------------------------------------------------------------------
#
# branch_merge and factor_codependent are offered by repro.repair as
# candidate fixes, so the property that matters is the safe direction:
# a program the refined analysis certifies free must never come back
# convicted after the transform.  (The other direction is fine — the
# transforms exist to *remove* false alarms.)


@FAST
@given(small_programs(with_loops=False))
def test_branch_merge_never_flips_free_to_convicted(program):
    merged, count = merge_branch_rendezvous(program)
    if count == 0:
        return
    if refined_deadlock_analysis(build_sync_graph(program)).deadlock_free:
        report = refined_deadlock_analysis(build_sync_graph(merged))
        assert report.deadlock_free, pretty(program)


@st.composite
def branchy_programs(draw) -> Program:
    """Loop-free programs whose only compounds are if statements, so
    the linearization space is exactly the set of branch choices."""
    tasks = []
    for i in range(N_TASKS):
        leaf = _leaf(i)
        stmt = st.one_of(
            leaf,
            leaf,
            st.builds(
                If,
                condition=st.just(Condition.unknown()),
                then_body=st.lists(leaf, min_size=1, max_size=2).map(tuple),
                else_body=st.lists(leaf, min_size=0, max_size=1).map(tuple),
            ),
        )
        body = draw(st.lists(stmt, min_size=0, max_size=3).map(tuple))
        tasks.append(TaskDecl(name=TASKS[i], body=body))
    return Program(name="branchy", tasks=tuple(tasks))


@FAST
@given(branchy_programs())
def test_linearizations_cover_exact_deadlocks(program):
    """Section 3.1.3: every deadlock of P lives in some linearized P_E,
    and every P_E deadlock is a P deadlock (branch draws are feasible).
    On branch-only programs the two exact verdicts therefore agree."""
    from repro.transforms.linearize import (
        count_linearizations,
        linearizations,
    )

    assume(count_linearizations(program) <= 32)
    exact = explore(build_sync_graph(program), state_limit=60_000)
    assert not exact.limited
    linear_deadlock = any(
        explore(build_sync_graph(lin), state_limit=60_000).has_deadlock
        for lin in linearizations(program)
    )
    assert exact.has_deadlock == linear_deadlock, pretty(program)


def _transformable_corpus_programs():
    import repro.workloads.corpus as paper_module
    from repro.workloads.adl_corpus import adl_corpus, repair_corpus

    pairs = [
        (f"paper:{name}", entry.program)
        for name, entry in sorted(paper_module.paper_corpus().items())
    ]
    for tag, entries in (("adl", adl_corpus()), ("repair", repair_corpus())):
        pairs.extend(
            (f"{tag}:{name}", entry.program)
            for name, entry in sorted(entries.items())
        )
    return pairs


@pytest.mark.parametrize(
    "name,program",
    _transformable_corpus_programs(),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_precision_transforms_never_convict_certified_corpora(name, program):
    """Differential sweep: applying branch_merge / factor_codependent to
    every (valid) corpus program never flips certified-free to
    convicted under the full pipeline."""
    import repro
    from repro.transforms.codependent import factor_codependent

    variants = []
    merged, merge_count = merge_branch_rendezvous(program)
    if merge_count:
        variants.append(("branch_merge", merged))
    factored, pairs = factor_codependent(program)
    if pairs:
        variants.append(("codependent", factored))
    if not variants:
        return
    base_free = repro.analyze(program).deadlock.deadlock_free
    for kind, variant in variants:
        got = repro.analyze(variant).deadlock.deadlock_free
        if base_free:
            assert got, f"{kind} convicted certified-free {name}"


def test_transform_sweep_is_nonvacuous(corpus):
    """fig5d guarantees the corpus sweep actually exercises
    factor_codependent (it is the paper's co-dependent example)."""
    from repro.transforms.codependent import factor_codependent

    _, pairs = factor_codependent(corpus["fig5d"].program)
    assert pairs


# --------------------------------------------------------------------------
# reductions agree with DPLL
# --------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_theorem2_matches_dpll(seed):
    formula = random_cnf(4, 5, seed=seed)
    inst = build_theorem2_program(formula)
    assert (find_unsequenceable_cycle(inst) is not None) == is_satisfiable(
        formula
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_theorem3_matches_dpll(seed):
    formula = random_cnf(4, 5, seed=seed)
    inst = build_theorem3_graph(formula)
    assert (find_constraint2_cycle(inst) is not None) == is_satisfiable(
        formula
    )


# --------------------------------------------------------------------------
# ordering backends agree
# --------------------------------------------------------------------------


@FAST
@given(small_programs())
def test_matrix_orderings_equivalent(program):
    from repro.analysis.orderings_matrix import compute_orderings_matrix

    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    assert (
        compute_orderings(graph).precedes
        == compute_orderings_matrix(graph).precedes
    )


# --------------------------------------------------------------------------
# witnesses agree with exploration; traces respect the §2 invariants
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_witness_iff_exact_deadlock(program):
    from repro.waves.states import trace_states
    from repro.waves.witness import find_anomaly_witness

    graph = build_sync_graph(program)
    exact = explore(graph, state_limit=60_000)
    witness = find_anomaly_witness(graph, "deadlock", state_limit=60_000)
    assert (witness is not None) == exact.has_deadlock, pretty(program)
    if witness is not None:
        for snapshot in trace_states(graph, witness):
            snapshot.check_invariants(graph)
        final = trace_states(graph, witness)[-1]
        assert final.ready_nodes() == ()


# --------------------------------------------------------------------------
# procedure inlining preserves exact semantics (vs interpreter parity)
# --------------------------------------------------------------------------


@st.composite
def programs_with_procedures(draw):
    from repro.lang.ast_nodes import Call, ProcDecl

    base = draw(small_programs(with_loops=False))
    # wrap a shared two-statement procedure and call it from task 0
    proc_body = (
        Send(task=TASKS[1], message="m0"),
        Accept(message="m1"),
    )
    tasks = list(base.tasks)
    tasks[0] = TaskDecl(
        name=tasks[0].name, body=(Call("shared"),) + tasks[0].body
    )
    return Program(
        name="withproc",
        tasks=tuple(tasks),
        procedures=(ProcDecl(name="shared", body=proc_body),),
    )


@FAST
@given(programs_with_procedures())
def test_inlining_preserves_exact_verdicts(program):
    from repro.transforms.inline import inline_procedures

    inlined, changed = inline_procedures(program)
    assert changed
    manual = Program(
        name=program.name,
        tasks=tuple(
            TaskDecl(
                name=t.name,
                body=(
                    program.procedures[0].body + t.body[1:]
                    if i == 0
                    else t.body
                ),
            )
            for i, t in enumerate(program.tasks)
        ),
    )
    got = explore(build_sync_graph(inlined), state_limit=60_000)
    want = explore(build_sync_graph(manual), state_limit=60_000)
    assert got.has_deadlock == want.has_deadlock
    assert got.has_stall == want.has_stall


# --------------------------------------------------------------------------
# Lemma 4 net-vector certification is sound
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_lemma4_certification_implies_no_stall(program):
    from repro.analysis.stalls import lemma4_stall_analysis

    report = lemma4_stall_analysis(program)
    if not report.stall_free:
        return
    exact = explore(build_sync_graph(program), state_limit=60_000)
    assert not exact.has_stall, pretty(program)

"""Property-based differential tests (hypothesis).

These encode the paper's safety contracts:

* every static detector is conservative — an exact (wave-model)
  deadlock is never certified away;
* the refined algorithm only ever removes alarms relative to naive;
* the Lemma-1 unroll transform preserves exact deadlock verdicts;
* derived orderings/co-executability facts are sound against the
  reachable wave space;
* Lemma 3's count balance implies stall freedom on unconditional
  programs;
* runtime (interpreter) deadlocks are always predicted statically;
* the parser/pretty-printer round-trip is the identity.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.coexec import compute_coexec
from repro.analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    k_pairs_analysis,
)
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.constraint4 import constraint4_deadlock_analysis
from repro.analysis.orderings import compute_orderings
from repro.analysis.refined import refined_deadlock_analysis
from repro.analysis.stalls import lemma3_stall_analysis
from repro.interp.scheduler import run_program
from repro.lang.ast_nodes import (
    Accept,
    Condition,
    If,
    Null,
    Program,
    Send,
    TaskDecl,
    While,
)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.reductions.cnf import random_cnf
from repro.reductions.dpll import is_satisfiable
from repro.reductions.theorem2 import (
    build_theorem2_program,
    find_unsequenceable_cycle,
)
from repro.reductions.theorem3 import (
    build_theorem3_graph,
    find_constraint2_cycle,
)
from repro.syncgraph.build import build_sync_graph
from repro.transforms.branch_merge import merge_branch_rendezvous
from repro.transforms.unroll import remove_loops
from repro.waves.explore import explore
from repro.waves.wave import initial_waves, next_waves

# --------------------------------------------------------------------------
# program strategies
# --------------------------------------------------------------------------

N_TASKS = 3
MESSAGES = ["m0", "m1"]
TASKS = [f"t{i}" for i in range(N_TASKS)]


def _leaf(task_index: int) -> st.SearchStrategy:
    sends = [
        Send(task=TASKS[j], message=m)
        for j in range(N_TASKS)
        if j != task_index
        for m in MESSAGES
    ]
    accepts = [Accept(message=m) for m in MESSAGES]
    return st.sampled_from(sends + accepts + [Null()])


def _stmt(task_index: int, depth: int) -> st.SearchStrategy:
    leaf = _leaf(task_index)
    if depth <= 0:
        return leaf
    inner = st.lists(_stmt(task_index, depth - 1), min_size=1, max_size=2)
    compound = st.one_of(
        st.builds(
            If,
            condition=st.just(Condition.unknown()),
            then_body=inner.map(tuple),
            else_body=st.lists(
                _stmt(task_index, depth - 1), min_size=0, max_size=1
            ).map(tuple),
        ),
        st.builds(
            While,
            condition=st.just(Condition.unknown()),
            body=inner.map(tuple),
        ),
    )
    return st.one_of(leaf, leaf, compound)  # bias toward leaves


@st.composite
def small_programs(draw, with_loops: bool = True) -> Program:
    tasks = []
    for i in range(N_TASKS):
        depth = 1 if with_loops else 0
        body = draw(
            st.lists(_stmt(i, depth), min_size=0, max_size=3).map(tuple)
        )
        tasks.append(TaskDecl(name=TASKS[i], body=body))
    return Program(name="prop", tasks=tuple(tasks))


FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DETECTORS = [
    naive_deadlock_analysis,
    refined_deadlock_analysis,
    constraint4_deadlock_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    combined_pairs_analysis,
    lambda graph: k_pairs_analysis(graph, k=3),
]


# --------------------------------------------------------------------------
# round trip
# --------------------------------------------------------------------------


@FAST
@given(small_programs())
def test_parse_pretty_roundtrip(program):
    assert parse_program(pretty(program)) == program


# --------------------------------------------------------------------------
# conservativeness (safety) of every detector
# --------------------------------------------------------------------------


@FAST
@given(small_programs())
def test_detectors_never_miss_exact_deadlocks(program):
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    exact = explore(graph, state_limit=60_000)
    if not exact.has_deadlock:
        return
    for detector in DETECTORS:
        report = detector(graph)
        assert not report.deadlock_free, (
            f"{report.algorithm} certified a program with an exact "
            f"deadlock:\n{pretty(program)}"
        )


@FAST
@given(small_programs())
def test_refined_family_alarms_subset_of_naive(program):
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    if naive_deadlock_analysis(graph).deadlock_free:
        for detector in DETECTORS[1:]:
            assert detector(graph).deadlock_free


# --------------------------------------------------------------------------
# Lemma 1: the unroll transform preserves exact deadlock verdicts
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=True))
def test_unroll_preserves_exact_deadlock(program):
    transformed, changed = remove_loops(program)
    before = explore(build_sync_graph(program), state_limit=60_000)
    after = explore(build_sync_graph(transformed), state_limit=60_000)
    assert before.has_deadlock == after.has_deadlock, pretty(program)


# --------------------------------------------------------------------------
# soundness of the derived facts
# --------------------------------------------------------------------------


def _co_waiting_pairs(graph, state_limit=60_000):
    """All unordered node pairs that wait together on some feasible wave."""
    from collections import deque

    seen = set()
    pairs = set()
    queue = deque()
    for wave in initial_waves(graph):
        if wave not in seen:
            seen.add(wave)
            queue.append(wave)
    while queue:
        wave = queue.popleft()
        real = wave.real_nodes()
        for i, a in enumerate(real):
            for b in real[i + 1 :]:
                pairs.add(frozenset((a, b)))
        for nxt in next_waves(graph, wave):
            if nxt not in seen and len(seen) < state_limit:
                seen.add(nxt)
                queue.append(nxt)
    return pairs


@FAST
@given(small_programs(with_loops=False))
def test_sequenceable_nodes_never_co_wait(program):
    graph = build_sync_graph(program)
    orderings = compute_orderings(graph)
    co_waiting = _co_waiting_pairs(graph)
    for a in graph.rendezvous_nodes:
        for b in orderings.sequenceable_with(a):
            assert frozenset((a, b)) not in co_waiting, (
                f"sequenceable pair co-waits: {a} / {b}\n{pretty(program)}"
            )


@FAST
@given(small_programs(with_loops=False))
def test_not_coexec_nodes_never_co_wait(program):
    graph = build_sync_graph(program)
    coexec = compute_coexec(graph)
    co_waiting = _co_waiting_pairs(graph)
    for a in graph.rendezvous_nodes:
        for b in coexec.not_coexec_with(a):
            assert frozenset((a, b)) not in co_waiting


# --------------------------------------------------------------------------
# Lemma 3 as a property
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_lemma3_balance_implies_no_stall(program):
    report = lemma3_stall_analysis(program)
    if not report.stall_free:
        return
    exact = explore(build_sync_graph(program), state_limit=60_000)
    assert not exact.has_stall, pretty(program)


# --------------------------------------------------------------------------
# runtime vs static
# --------------------------------------------------------------------------


@FAST
@given(small_programs(), st.integers(min_value=0, max_value=7))
def test_runtime_deadlocks_predicted_statically(program, seed):
    result = run_program(program, seed=seed, max_loop_iters=3)
    if result.status != "stuck" or not result.is_deadlock:
        return
    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    exact = explore(graph, state_limit=60_000)
    assert exact.has_anomaly, pretty(program)
    report = refined_deadlock_analysis(graph)
    if exact.has_deadlock:
        assert not report.deadlock_free


# --------------------------------------------------------------------------
# branch merge is anomaly preserving
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_branch_merge_preserves_anomalies(program):
    merged, count = merge_branch_rendezvous(program)
    if count == 0:
        return
    before = explore(build_sync_graph(program), state_limit=60_000)
    after = explore(build_sync_graph(merged), state_limit=60_000)
    assert before.has_anomaly <= after.has_anomaly, pretty(program)


# --------------------------------------------------------------------------
# reductions agree with DPLL
# --------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_theorem2_matches_dpll(seed):
    formula = random_cnf(4, 5, seed=seed)
    inst = build_theorem2_program(formula)
    assert (find_unsequenceable_cycle(inst) is not None) == is_satisfiable(
        formula
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_theorem3_matches_dpll(seed):
    formula = random_cnf(4, 5, seed=seed)
    inst = build_theorem3_graph(formula)
    assert (find_constraint2_cycle(inst) is not None) == is_satisfiable(
        formula
    )


# --------------------------------------------------------------------------
# ordering backends agree
# --------------------------------------------------------------------------


@FAST
@given(small_programs())
def test_matrix_orderings_equivalent(program):
    from repro.analysis.orderings_matrix import compute_orderings_matrix

    transformed, _ = remove_loops(program)
    graph = build_sync_graph(transformed)
    assert (
        compute_orderings(graph).precedes
        == compute_orderings_matrix(graph).precedes
    )


# --------------------------------------------------------------------------
# witnesses agree with exploration; traces respect the §2 invariants
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_witness_iff_exact_deadlock(program):
    from repro.waves.states import trace_states
    from repro.waves.witness import find_anomaly_witness

    graph = build_sync_graph(program)
    exact = explore(graph, state_limit=60_000)
    witness = find_anomaly_witness(graph, "deadlock", state_limit=60_000)
    assert (witness is not None) == exact.has_deadlock, pretty(program)
    if witness is not None:
        for snapshot in trace_states(graph, witness):
            snapshot.check_invariants(graph)
        final = trace_states(graph, witness)[-1]
        assert final.ready_nodes() == ()


# --------------------------------------------------------------------------
# procedure inlining preserves exact semantics (vs interpreter parity)
# --------------------------------------------------------------------------


@st.composite
def programs_with_procedures(draw):
    from repro.lang.ast_nodes import Call, ProcDecl

    base = draw(small_programs(with_loops=False))
    # wrap a shared two-statement procedure and call it from task 0
    proc_body = (
        Send(task=TASKS[1], message="m0"),
        Accept(message="m1"),
    )
    tasks = list(base.tasks)
    tasks[0] = TaskDecl(
        name=tasks[0].name, body=(Call("shared"),) + tasks[0].body
    )
    return Program(
        name="withproc",
        tasks=tuple(tasks),
        procedures=(ProcDecl(name="shared", body=proc_body),),
    )


@FAST
@given(programs_with_procedures())
def test_inlining_preserves_exact_verdicts(program):
    from repro.transforms.inline import inline_procedures

    inlined, changed = inline_procedures(program)
    assert changed
    manual = Program(
        name=program.name,
        tasks=tuple(
            TaskDecl(
                name=t.name,
                body=(
                    program.procedures[0].body + t.body[1:]
                    if i == 0
                    else t.body
                ),
            )
            for i, t in enumerate(program.tasks)
        ),
    )
    got = explore(build_sync_graph(inlined), state_limit=60_000)
    want = explore(build_sync_graph(manual), state_limit=60_000)
    assert got.has_deadlock == want.has_deadlock
    assert got.has_stall == want.has_stall


# --------------------------------------------------------------------------
# Lemma 4 net-vector certification is sound
# --------------------------------------------------------------------------


@FAST
@given(small_programs(with_loops=False))
def test_lemma4_certification_implies_no_stall(program):
    from repro.analysis.stalls import lemma4_stall_analysis

    report = lemma4_stall_analysis(program)
    if not report.stall_free:
        return
    exact = explore(build_sync_graph(program), state_limit=60_000)
    assert not exact.has_stall, pretty(program)

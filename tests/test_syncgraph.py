"""Sync graph construction tests (paper, Section 2)."""

import pytest

from repro.lang.ast_nodes import Signal
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.dot import sync_graph_to_dot


def graph_for(src):
    return build_sync_graph(parse_program(src))


class TestNodes:
    def test_one_node_per_rendezvous_statement(self, handshake):
        sg = build_sync_graph(handshake)
        assert len(sg.rendezvous_nodes) == 4
        assert len(sg) == 6  # + b and e

    def test_triple_notation(self, handshake):
        sg = build_sync_graph(handshake)
        send = next(n for n in sg.nodes_of_task("t1") if n.kind == "send")
        assert send.triple == ("t2", "sig1", "+")
        accept = next(n for n in sg.nodes_of_task("t2") if n.kind == "accept")
        assert accept.triple == ("t2", "sig1", "-")

    def test_accept_signal_is_own_task(self):
        sg = graph_for(
            "program p; task a is begin accept m; end;"
            "task b is begin send a.m; end;"
        )
        accept = next(n for n in sg.nodes_of_task("a"))
        assert accept.signal == Signal("a", "m")


class TestControlEdges:
    def test_b_to_first_rendezvous(self, handshake):
        sg = build_sync_graph(handshake)
        firsts = {dst.label for src, dst in sg.control_edges() if src is sg.b}
        assert firsts == {"(t2,sig1,+)", "(t2,sig1,-)"}

    def test_last_rendezvous_to_e(self, handshake):
        sg = build_sync_graph(handshake)
        lasts = {
            src.label for src, dst in sg.control_edges() if dst is sg.e
        }
        assert lasts == {"(t1,sig2,-)", "(t1,sig2,+)"}

    def test_intervening_statements_are_skipped(self):
        sg = graph_for(
            "program p;"
            "task a is begin send b.m; x := ?; null; send b.n; end;"
            "task b is begin accept m; accept n; end;"
        )
        first = next(
            n for n in sg.nodes_of_task("a") if n.signal.message == "m"
        )
        succs = sg.control_successors(first)
        assert [n.signal.message for n in succs] == ["n"]

    def test_conditional_creates_multiple_successors(self):
        sg = graph_for(
            "program p;"
            "task a is begin send b.m; if ? then send b.x; else send b.y; "
            "end if; end;"
            "task b is begin accept m; if ? then accept x; else accept y; "
            "end if; end;"
        )
        first = next(
            n for n in sg.nodes_of_task("a") if n.signal.message == "m"
        )
        succ_msgs = {n.signal.message for n in sg.control_successors(first)}
        assert succ_msgs == {"x", "y"}

    def test_skippable_rendezvous_adds_bypass_edge(self):
        sg = graph_for(
            "program p;"
            "task a is begin if ? then send b.m; end if; end;"
            "task b is begin if ? then accept m; end if; end;"
        )
        # the conditional can be skipped entirely: b -> e in both tasks
        assert sg.e in [n for n in sg.initial_options("a")]
        assert sg.e in [n for n in sg.initial_options("b")]

    def test_task_without_rendezvous_is_skippable(self):
        sg = graph_for(
            "program p; task a is begin null; end;"
            "task b is begin null; end;"
        )
        assert sg.initial_options("a") == (sg.e,)

    def test_loop_produces_control_cycle(self):
        sg = graph_for(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        assert sg.has_control_cycle()

    def test_loop_free_is_acyclic(self, handshake):
        assert not build_sync_graph(handshake).has_control_cycle()


class TestSyncEdges:
    def test_complementary_pairs_connected(self, handshake):
        sg = build_sync_graph(handshake)
        assert len(list(sg.sync_edges())) == 2

    def test_all_pairs_of_shared_signal(self):
        sg = graph_for(
            "program p;"
            "task a is begin send c.m; end;"
            "task b is begin send c.m; end;"
            "task c is begin accept m; accept m; end;"
        )
        # 2 senders x 2 accepters
        assert len(list(sg.sync_edges())) == 4

    def test_no_edge_between_same_sign(self):
        sg = graph_for(
            "program p;"
            "task a is begin send c.m; end;"
            "task b is begin send c.m; end;"
            "task c is begin accept m; accept m; end;"
        )
        for x, y in sg.sync_edges():
            assert {x.sign, y.sign} == {"+", "-"}

    def test_unmatched_send_has_no_partners(self, stall_program):
        sg = build_sync_graph(stall_program)
        (send,) = sg.nodes_of_task("t1")
        assert sg.sync_neighbors(send) == ()

    def test_senders_and_accepters_lookup(self, handshake):
        sg = build_sync_graph(handshake)
        sig = Signal("t2", "sig1")
        assert len(sg.senders_of(sig)) == 1
        assert len(sg.accepters_of(sig)) == 1


class TestReachability:
    def test_control_descendants(self, handshake):
        sg = build_sync_graph(handshake)
        first = next(
            n for n in sg.nodes_of_task("t1") if n.signal.message == "sig1"
        )
        desc = sg.control_descendants(first)
        assert sg.e in desc
        assert len([n for n in desc if n.is_rendezvous]) == 1

    def test_control_reaches_is_reflexive(self, handshake):
        sg = build_sync_graph(handshake)
        node = sg.rendezvous_nodes[0]
        assert sg.control_reaches(node, node)


class TestExport:
    def test_stats(self, handshake):
        sg = build_sync_graph(handshake)
        stats = sg.stats()
        assert stats == {
            "tasks": 2,
            "nodes": 6,
            "control_edges": 6,
            "sync_edges": 2,
        }

    def test_networkx_export_tags_edges(self, handshake):
        g = build_sync_graph(handshake).to_networkx()
        kinds = {d["kind"] for _, _, d in g.edges(data=True)}
        assert kinds == {"control", "sync"}

    def test_dot_output_shape(self, handshake):
        dot = sync_graph_to_dot(build_sync_graph(handshake))
        assert dot.startswith("digraph")
        assert "style=dashed" in dot
        assert "cluster_t1" in dot


class TestMetrics:
    def test_handshake_metrics(self, handshake):
        from repro.syncgraph.metrics import compute_metrics

        m = compute_metrics(build_sync_graph(handshake))
        assert m.tasks == 2
        assert m.rendezvous_nodes == 4
        assert m.sync_edges == 2
        assert m.clg_nodes == 10
        assert m.refined_work_bound == 10 * (10 + m.clg_edges)
        assert m.wave_space_bound == 9  # (2+1)*(2+1)
        assert not m.has_control_cycle

    def test_cyclic_flag(self):
        from repro.syncgraph.metrics import compute_metrics

        sg = graph_for(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        m = compute_metrics(sg)
        assert m.has_control_cycle
        assert "Lemma-1" in m.describe()

    def test_to_dict_roundtrips_json(self, handshake):
        import json

        from repro.syncgraph.metrics import compute_metrics

        m = compute_metrics(build_sync_graph(handshake))
        assert json.loads(json.dumps(m.to_dict()))["tasks"] == 2

"""Unit tests for the ADL parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast_nodes import (
    Accept,
    Assign,
    For,
    If,
    Null,
    Send,
    While,
)
from repro.lang.parser import parse_program, parse_task_body


class TestPrograms:
    def test_minimal_program(self):
        p = parse_program("program p; task t is begin null; end;")
        assert p.name == "p"
        assert p.task_names == ("t",)
        assert p.task("t").body == (Null(),)

    def test_multiple_tasks_in_order(self):
        p = parse_program(
            "program p;"
            "task a is begin null; end;"
            "task b is begin null; end;"
            "task c is begin null; end;"
        )
        assert p.task_names == ("a", "b", "c")

    def test_empty_task_body(self):
        p = parse_program("program p; task t is begin end;")
        assert p.task("t").body == ()

    def test_program_without_tasks_rejected(self):
        with pytest.raises(ParseError):
            parse_program("program p;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program("program p; task t is begin end; stray")


class TestStatements:
    def test_send(self):
        (stmt,) = parse_task_body("send server.request;")
        assert stmt == Send(task="server", message="request")

    def test_accept(self):
        (stmt,) = parse_task_body("accept request;")
        assert stmt == Accept(message="request")

    def test_accept_with_binding(self):
        (stmt,) = parse_task_body("accept flag (v);")
        assert stmt == Accept(message="flag", binds="v")

    def test_assign_variants(self):
        stmts = parse_task_body("a := ?; b := true; c := 7; d := other;")
        assert stmts == (
            Assign(var="a", expr="?"),
            Assign(var="b", expr="true"),
            Assign(var="c", expr="7"),
            Assign(var="d", expr="other"),
        )

    def test_send_requires_dot(self):
        with pytest.raises(ParseError):
            parse_task_body("send server request;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_task_body("null")


class TestConditionals:
    def test_if_then(self):
        (stmt,) = parse_task_body("if ? then null; end if;")
        assert isinstance(stmt, If)
        assert stmt.condition.text == "?"
        assert stmt.then_body == (Null(),)
        assert stmt.else_body == ()

    def test_if_else(self):
        (stmt,) = parse_task_body(
            "if flag then send t.a; else accept b; end if;"
        )
        assert stmt.condition.var == "flag"
        assert isinstance(stmt.then_body[0], Send)
        assert isinstance(stmt.else_body[0], Accept)

    def test_negated_condition(self):
        (stmt,) = parse_task_body("if not flag then null; end if;")
        assert stmt.condition.var == "flag"
        assert stmt.condition.negated

    def test_elsif_desugars_to_nested_if(self):
        (stmt,) = parse_task_body(
            "if a then null; elsif b then null; else null; end if;"
        )
        assert isinstance(stmt, If)
        assert len(stmt.else_body) == 1
        inner = stmt.else_body[0]
        assert isinstance(inner, If)
        assert inner.condition.var == "b"
        assert inner.else_body == (Null(),)

    def test_nested_ifs(self):
        (stmt,) = parse_task_body(
            "if ? then if ? then null; end if; end if;"
        )
        assert isinstance(stmt.then_body[0], If)


class TestLoops:
    def test_while(self):
        (stmt,) = parse_task_body("while ? loop accept tick; end loop;")
        assert isinstance(stmt, While)
        assert stmt.body == (Accept(message="tick"),)

    def test_for_with_bounds(self):
        (stmt,) = parse_task_body("for i in 1 .. 3 loop null; end loop;")
        assert isinstance(stmt, For)
        assert (stmt.var, stmt.lower, stmt.upper) == ("i", 1, 3)
        assert stmt.trip_count == 3

    def test_for_empty_range(self):
        (stmt,) = parse_task_body("for i in 5 .. 2 loop null; end loop;")
        assert stmt.trip_count == 0

    def test_while_condition_variable(self):
        (stmt,) = parse_task_body("while more loop null; end loop;")
        assert stmt.condition.var == "more"

    def test_missing_end_loop(self):
        with pytest.raises(ParseError):
            parse_task_body("while ? loop null; end;")

"""Unit tests for the ADL lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Token, TokenType, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.type != TokenType.EOF]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type == TokenType.EOF

    def test_keywords_are_recognized(self):
        toks = tokenize("program task is begin end send accept")
        assert all(t.type == TokenType.KEYWORD for t in toks[:-1])

    def test_keywords_are_case_insensitive(self):
        toks = tokenize("PROGRAM Task IS")
        assert [t.value for t in toks[:-1]] == ["program", "task", "is"]

    def test_identifiers_preserve_case(self):
        toks = tokenize("MyTask foo_bar x9")
        assert [t.type for t in toks[:-1]] == [TokenType.IDENT] * 3
        assert [t.value for t in toks[:-1]] == ["MyTask", "foo_bar", "x9"]

    def test_integers(self):
        toks = tokenize("0 42 1234")
        assert [t.type for t in toks[:-1]] == [TokenType.INT] * 3
        assert [t.value for t in toks[:-1]] == ["0", "42", "1234"]

    def test_punctuation(self):
        assert kinds("; . ? ( )")[:-1] == [
            TokenType.SEMI,
            TokenType.DOT,
            TokenType.QUESTION,
            TokenType.LPAREN,
            TokenType.RPAREN,
        ]

    def test_assign_token(self):
        assert kinds("x := ?")[:-1] == [
            TokenType.IDENT,
            TokenType.ASSIGN,
            TokenType.QUESTION,
        ]

    def test_dotdot_vs_dot(self):
        assert kinds("1 .. 2")[:-1] == [
            TokenType.INT,
            TokenType.DOTDOT,
            TokenType.INT,
        ]
        assert kinds("a.b")[:-1] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]


class TestCommentsAndWhitespace:
    def test_comment_runs_to_end_of_line(self):
        assert values("send -- this is a comment\n accept") == [
            "send",
            "accept",
        ]

    def test_comment_at_eof(self):
        assert values("null; -- trailing") == ["null", ";"]

    def test_whitespace_variants(self):
        assert values("a\tb\r\nc") == ["a", "b", "c"]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_columns_after_multichar_tokens(self):
        toks = tokenize("abc de")
        assert toks[1].column == 5


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("send @")
        assert exc.value.line == 1

    def test_error_reports_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n   $")
        assert exc.value.line == 2
        assert exc.value.column == 4

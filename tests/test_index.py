"""Differential tests: indexed bitset kernels vs the reference sets.

The ``backend="index"`` paths of the refined algorithm family must be
observationally indistinguishable from the ``backend="reference"``
oracle — same verdicts, same evidence components, same stats (down to
the per-rule pruning counters).  Hypothesis drives both backends over
random programs; the bundled paper corpus pins the real workloads.
Also covers the early-exit property of the rooted Tarjan kernel and
the satellite behaviors added alongside it (``sequenceable_with``
memoization, the ``compute_orderings`` convergence warning).
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given

from repro import obs
from repro.analysis.constraint4 import constraint4_deadlock_analysis
from repro.analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    k_pairs_analysis,
)
from repro.analysis.index import AnalysisIndex
from repro.analysis.orderings import compute_orderings
from repro.analysis.refined import (
    component_for_head,
    possible_heads,
    refined_deadlock_analysis,
)
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from tests.conftest import graph_of
from tests.test_properties import FAST, small_programs

BACKEND_AWARE_DETECTORS = [
    refined_deadlock_analysis,
    constraint4_deadlock_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    combined_pairs_analysis,
]


def _report_fingerprint(report):
    return (
        report.verdict,
        report.algorithm,
        report.heads_examined,
        [(e.component, e.head, e.tail) for e in report.evidence],
        report.stats,
    )


class TestDifferentialEquivalence:
    @FAST
    @given(small_programs())
    def test_refined_backends_agree(self, program):
        """Verdict, evidence AND stats — including the pruning counters,
        which only appear under observability — must match exactly."""
        graph = graph_of(program)
        with obs.observed():
            indexed = refined_deadlock_analysis(graph, backend="index")
        with obs.observed():
            reference = refined_deadlock_analysis(graph, backend="reference")
        assert "pruning" in indexed.stats
        assert _report_fingerprint(indexed) == _report_fingerprint(reference)

    @FAST
    @given(small_programs())
    def test_extensions_and_constraint4_backends_agree(self, program):
        graph = graph_of(program)
        index = AnalysisIndex(graph)
        for detector in BACKEND_AWARE_DETECTORS[1:]:
            indexed = detector(graph, backend="index", index=index)
            reference = detector(graph, backend="reference", index=index)
            assert _report_fingerprint(indexed) == _report_fingerprint(
                reference
            ), detector.__name__

    @FAST
    @given(small_programs())
    def test_k_pairs_backends_agree(self, program):
        graph = graph_of(program)
        indexed = k_pairs_analysis(graph, k=3, backend="index")
        reference = k_pairs_analysis(graph, k=3, backend="reference")
        assert _report_fingerprint(indexed) == _report_fingerprint(reference)

    def test_corpus_backend_parity(self, corpus):
        """Whole bundled paper corpus: identical reports per detector."""
        for name, entry in corpus.items():
            graph = graph_of(entry.program)
            index = AnalysisIndex(graph)
            for detector in BACKEND_AWARE_DETECTORS:
                with obs.observed():
                    indexed = detector(graph, backend="index", index=index)
                with obs.observed():
                    reference = detector(
                        graph, backend="reference", index=index
                    )
                assert _report_fingerprint(indexed) == _report_fingerprint(
                    reference
                ), f"{name}/{detector.__name__}"

    @FAST
    @given(small_programs())
    def test_shared_index_matches_fresh_builds(self, program):
        """One AnalysisIndex shared across analyses changes nothing."""
        graph = graph_of(program)
        index = AnalysisIndex(graph)
        shared = refined_deadlock_analysis(graph, index=index)
        fresh = refined_deadlock_analysis(graph)
        assert _report_fingerprint(shared) == _report_fingerprint(fresh)


# Two disjoint deadlock cycles: {t1, t2} wait on each other and,
# independently, {t3, t4} wait on each other.  t1's component never
# requires visiting the t3/t4 half of the CLG.
TWO_CYCLES_SRC = """
program two_cycles;
task t1 is begin accept a; send t2.b; end;
task t2 is begin accept b; send t1.a; end;
task t3 is begin accept c; send t4.d; end;
task t4 is begin accept d; send t3.c; end;
"""


class TestEarlyExitTarjan:
    def _graph(self):
        transformed, _ = remove_loops(parse_program(TWO_CYCLES_SRC))
        return build_sync_graph(transformed)

    def test_stops_before_visiting_other_components(self):
        graph = self._graph()
        index = AnalysisIndex(graph)
        head = next(
            h for h in possible_heads(graph) if h.task in ("t1", "t2")
        )
        no_sync, do_not_enter = index.head_marks(head)
        h_id = index.in_id[head]
        assert not ((no_sync | do_not_enter) >> h_id) & 1
        ids, visited = index.cyclic_component_ids(h_id, no_sync, do_not_enter)
        assert ids is not None
        # The rooted walk never reaches the t3/t4 half of the CLG, let
        # alone b/e — strictly fewer nodes than a full enumeration.
        assert visited < index.node_count
        projected = index.project_ids(ids)
        assert {n.task for n in projected} == {"t1", "t2"}

    def test_component_matches_reference_search(self):
        graph = self._graph()
        index = AnalysisIndex(graph)
        orderings, coexec = index.orderings, index.coexec
        for head in possible_heads(graph):
            reference = component_for_head(
                graph, index.clg, head, orderings, coexec
            )
            no_sync, do_not_enter = index.head_marks(head)
            if ((no_sync | do_not_enter) >> index.in_id[head]) & 1:
                assert reference is None
                continue
            ids, _ = index.cyclic_component_ids(
                index.in_id[head], no_sync, do_not_enter
            )
            if reference is None:
                assert ids is None
            else:
                node_index = index.clg.node_index
                assert ids is not None
                assert sorted(node_index[n] for n in reference) == sorted(ids)


class TestSatelliteBehaviors:
    def test_sequenceable_with_is_memoized(self, handshake):
        graph = graph_of(handshake)
        orderings = compute_orderings(graph)
        assert orderings._seq_with is None
        node = graph.rendezvous_nodes[0]
        first = orderings.sequenceable_with(node)
        cache = orderings._seq_with
        assert cache is not None
        assert orderings.sequenceable_with(node) == first
        assert orderings._seq_with is cache  # no rebuild on the second query
        # The symmetric closure is still correct.
        for a in graph.rendezvous_nodes:
            for b in graph.rendezvous_nodes:
                assert (b in orderings.sequenceable_with(a)) == (
                    orderings.sequenceable(a, b)
                )

    def test_orderings_budget_exhaustion_warns(self, handshake):
        graph = graph_of(handshake)
        with obs.observed() as session:
            with pytest.warns(RuntimeWarning, match="work budget"):
                partial = compute_orderings(graph, max_iterations=0)
        registry = session.registry
        assert registry.counter_value("orderings.max_iterations_exhausted") == 1
        assert registry.counter_value("orderings.worklist_steps") == 0
        # The partial fixpoint is a sound subset of the converged one.
        full = compute_orderings(graph)
        for node, targets in partial.precedes.items():
            assert targets <= full.precedes[node]

    def test_converged_run_does_not_warn(self, handshake):
        graph = graph_of(handshake)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compute_orderings(graph)

    def test_mark_cache_counters(self, handshake):
        graph = graph_of(handshake)
        with obs.observed() as session:
            index = AnalysisIndex(graph)
            head = graph.rendezvous_nodes[0]
            index.head_marks(head)
            index.head_marks(head)
            index.head_marks(head, use_coaccept=False)
        registry = session.registry
        assert registry.counter_value("index.mark_cache_misses") == 2
        assert registry.counter_value("index.mark_cache_hits") == 1

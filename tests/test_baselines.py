"""Taylor concurrency-state-graph baseline tests."""

import pytest

from repro.baselines.taylor_csg import taylor_csg_analysis
from repro.errors import ExplorationLimitError
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.workloads.patterns import (
    dining_philosophers,
    pipeline,
)


class TestVerdicts:
    def test_handshake_clean(self, handshake):
        result = taylor_csg_analysis(handshake)
        assert result.deadlock_free
        assert result.can_terminate

    def test_crossed_deadlocks(self, crossed):
        result = taylor_csg_analysis(crossed)
        assert result.has_deadlock
        assert result.deadlock_states

    def test_stall_counts_as_blocked_state(self, stall_program):
        # a stalled state has no transitions either
        assert taylor_csg_analysis(stall_program).has_deadlock

    def test_philosophers(self):
        assert taylor_csg_analysis(dining_philosophers(3, True)).has_deadlock
        assert taylor_csg_analysis(
            dining_philosophers(3, False)
        ).deadlock_free


class TestStateSpace:
    def test_csg_is_larger_than_wave_space(self):
        program = pipeline(3, 2)
        waves = explore(build_sync_graph(program)).visited_count
        csg = taylor_csg_analysis(program).state_count
        assert csg > waves

    def test_state_limit(self):
        with pytest.raises(ExplorationLimitError):
            taylor_csg_analysis(dining_philosophers(4, True), state_limit=10)

    def test_loops_terminate(self):
        p = parse_program(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        result = taylor_csg_analysis(p)
        assert result.state_count > 0


class TestAgreementWithWaves:
    @pytest.mark.parametrize("seed", range(10))
    def test_deadlock_agreement_on_random_programs(self, seed):
        from repro.workloads.random_programs import (
            random_serializable_program,
        )

        program = random_serializable_program(
            tasks=3, rendezvous=5, seed=seed
        )
        wave_result = explore(build_sync_graph(program))
        csg_result = taylor_csg_analysis(program)
        # The CSG's "deadlock" covers stalls too, so compare against
        # any-anomaly; termination must agree exactly.
        assert csg_result.has_deadlock == wave_result.has_anomaly
        assert csg_result.can_terminate == wave_result.can_terminate

"""Guided exact search: future-cost table, A*/beam parity, CLI flags.

The contract under test (see ``repro.waves.guide``):

* the future-cost table is **admissible and consistent** — along any
  real witness schedule the estimate never exceeds the true remaining
  distance and never drops by more than one per step;
* guidance only reorders expansion — exhaustive bfs/astar/wide-beam
  runs agree on every verdict-bearing fact, and budget-limited guided
  runs stay *sound* (everything they claim is confirmed by the BFS
  oracle) with PR 5's ``on_limit="partial"`` semantics intact;
* the strategy knob validates loudly everywhere it enters (library and
  CLI, exit code 2).
"""

import json
import subprocess
import sys

import pytest
from hypothesis import given

from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.waves.anomaly import is_anomalous
from repro.waves.engine import WaveIndex
from repro.waves.explore import explore
from repro.waves.guide import (
    DEFAULT_BEAM_WIDTH,
    SATURATED,
    FutureCostTable,
    build_guide,
    guide_for,
    validate_strategy,
)
from repro.waves.wave import iter_initial_waves, next_waves_with_events
from repro.waves.witness import search_anomaly_witness
from repro.workloads.patterns import corridor, dining_philosophers
from tests.conftest import CROSSED_SRC, HANDSHAKE_SRC, graph_of
from tests.test_properties import FAST, small_programs

# Wide enough that beam never truncates on any program in this file:
# "beam with an un-hit width" must behave exactly like an exhaustive
# best-first search.
FULL_WIDTH = 1 << 20

GENEROUS = 200_000


def _pack(engine, wave):
    """Pack a reference Wave into the engine's mixed-radix key."""
    key = 0
    for i in range(engine.task_count):
        lo = engine.slot_base[i]
        hi = (
            engine.slot_base[i + 1]
            if i + 1 < engine.task_count
            else engine.slot_count
        )
        local = engine.node_of_slot[lo:hi].index(wave.positions[i])
        key |= local << engine.shift[i]
    return key


def _fingerprint(classification):
    return (
        classification.wave,
        classification.stalls,
        classification.deadlocks,
    )


def _fingerprints(result):
    return frozenset(_fingerprint(c) for c in result.anomalous)


def _assert_valid_witness(graph, witness):
    """The witness replays: a genuine initial wave, every step a legal
    rendezvous, ending at a genuinely anomalous wave."""
    assert witness.waves[0] == witness.initial
    assert witness.initial in set(iter_initial_waves(graph))
    assert len(witness.waves) == len(witness.schedule) + 1
    for prev, event, nxt in zip(
        witness.waves, witness.schedule, witness.waves[1:]
    ):
        assert (event, nxt) in list(next_waves_with_events(graph, prev))
    assert is_anomalous(graph, witness.waves[-1])


# --------------------------------------------------------------------------
# future-cost table: admissibility and consistency
# --------------------------------------------------------------------------


class TestAdmissibility:
    @pytest.mark.parametrize(
        "program",
        [corridor(3, 2), corridor(4, 2), dining_philosophers(3)],
        ids=lambda p: p.name,
    )
    def test_estimate_never_exceeds_true_distance(self, program):
        # Walk a real shortest deadlock schedule (BFS witness): at step
        # j the true remaining distance is len(schedule) - j, and the
        # estimate must lower-bound it at every wave along the way.
        graph = graph_of(program)
        engine = WaveIndex(graph)
        guide = guide_for(engine)
        outcome = search_anomaly_witness(
            graph, kind="deadlock", state_limit=GENEROUS, engine=engine
        )
        witness = outcome.witness
        assert witness is not None and not outcome.limited
        total = len(witness.schedule)
        for j, wave in enumerate(witness.waves):
            h = guide.estimate(_pack(engine, wave))
            assert h <= total - j, (program.name, j, h, total)
        # At the deadlock wave itself the bound is exactly zero.
        assert guide.estimate(_pack(engine, witness.waves[-1])) == 0

    @pytest.mark.parametrize(
        "program",
        [corridor(3, 2), dining_philosophers(3)],
        ids=lambda p: p.name,
    )
    def test_estimate_is_consistent_along_schedules(self, program):
        # One rendezvous of path cost may drop the estimate by at most
        # one — the property that makes A* witnesses shortest.
        graph = graph_of(program)
        engine = WaveIndex(graph)
        guide = guide_for(engine)
        witness = search_anomaly_witness(
            graph, kind="deadlock", state_limit=GENEROUS, engine=engine
        ).witness
        for prev, nxt in zip(witness.waves, witness.waves[1:]):
            h_prev = guide.estimate(_pack(engine, prev))
            h_next = guide.estimate(_pack(engine, nxt))
            assert h_prev <= h_next + 1

    def test_anomaly_estimate_lower_bounds_deadlock_estimate(self):
        # The stall/any goal set is a superset of the deadlock goal
        # set, so its admissible bound can only be smaller.
        graph = graph_of(corridor(3, 2))
        engine = WaveIndex(graph)
        guide = guide_for(engine)
        for key, _ in engine._seed():
            assert guide.estimate_anomaly(key) <= guide.estimate(key)

    def test_corridor_initial_estimate_is_positive(self):
        # The flagship family: the table must actually see through the
        # chatter — a zero estimate at the start would guide nothing.
        graph = graph_of(corridor(4, 2))
        engine = WaveIndex(graph)
        guide = guide_for(engine)
        key, _ = next(iter(engine._seed()))
        assert 0 < guide.estimate(key) < SATURATED

    def test_deadlock_free_program_saturates_or_bounds(self):
        # No deadlock is reachable in the handshake, so *any* value is
        # admissible for the deadlock goal; the table must still build
        # and keep the exhaustive verdict identical (checked below by
        # the parity tests) — here just pin that it answers.
        graph = graph_of(parse_program(HANDSHAKE_SRC))
        engine = WaveIndex(graph)
        guide = build_guide(engine)
        key, _ = next(iter(engine._seed()))
        assert guide.estimate(key) >= 0

    def test_guide_for_caches_on_engine(self):
        engine = WaveIndex(graph_of(corridor(3, 2)))
        assert guide_for(engine) is guide_for(engine)

    def test_build_guide_accepts_explicit_report(self):
        from repro.analysis.refined import refined_deadlock_analysis

        graph = graph_of(corridor(3, 2))
        engine = WaveIndex(graph)
        report = refined_deadlock_analysis(graph)
        table = FutureCostTable(engine, report)
        assert table.group_count >= 1


class TestValidateStrategy:
    def test_known_strategies_pass(self):
        assert validate_strategy("bfs", None) == DEFAULT_BEAM_WIDTH
        assert validate_strategy("astar", None) == DEFAULT_BEAM_WIDTH
        assert validate_strategy("beam", 7) == 7

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            validate_strategy("dfs", None)

    def test_beam_width_requires_beam(self):
        with pytest.raises(ValueError, match="beam_width"):
            validate_strategy("astar", 8)

    def test_beam_width_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            validate_strategy("beam", 0)

    def test_guided_requires_index_backend(self):
        with pytest.raises(ValueError, match="backend"):
            validate_strategy("astar", None, backend="reference")
        # BFS runs on either kernel.
        validate_strategy("bfs", None, backend="reference")


# --------------------------------------------------------------------------
# differential parity: bfs vs astar vs wide beam
# --------------------------------------------------------------------------


class TestExhaustiveParity:
    """An exhaustive run must not depend on expansion order at all."""

    @FAST
    @given(small_programs())
    def test_exhaustive_runs_agree(self, program):
        graph = graph_of(program)
        bfs = explore(graph, state_limit=GENEROUS, strategy="bfs")
        astar = explore(graph, state_limit=GENEROUS, strategy="astar")
        beam = explore(
            graph,
            state_limit=GENEROUS,
            strategy="beam",
            beam_width=FULL_WIDTH,
        )
        assert not bfs.limited
        for guided in (astar, beam):
            assert not guided.limited
            assert not guided.truncated
            assert guided.visited_count == bfs.visited_count
            assert guided.can_terminate == bfs.can_terminate
            # Guided expansion order may surface anomalies in a
            # different order; the *set* must match exactly.
            assert _fingerprints(guided) == _fingerprints(bfs)
        assert astar.strategy == "astar" and beam.strategy == "beam"

    def test_corpus_flagships_agree(self, corpus):
        for name in ("fig1", "fig2b", "fig5bc"):
            graph = graph_of(corpus[name].program)
            bfs = explore(graph, state_limit=GENEROUS)
            astar = explore(graph, state_limit=GENEROUS, strategy="astar")
            assert _fingerprints(astar) == _fingerprints(bfs)
            assert astar.visited_count == bfs.visited_count


class TestBudgetedSoundness:
    """PR 5's budget semantics are strategy-independent: a limited
    guided run claims only facts the BFS oracle confirms."""

    @FAST
    @given(small_programs())
    def test_tight_budget_partial_results_are_sound(self, program):
        graph = graph_of(program)
        oracle = explore(graph, state_limit=GENEROUS, strategy="bfs")
        assert not oracle.limited
        truth = _fingerprints(oracle)
        for strategy, width in (
            ("bfs", None),
            ("astar", None),
            ("beam", 3),
        ):
            partial = explore(
                graph,
                state_limit=7,
                strategy=strategy,
                beam_width=width,
                on_limit="partial",
            )
            assert partial.visited_count <= 7
            # Everything a limited run *claims* is definite truth.
            assert _fingerprints(partial) <= truth
            if partial.can_terminate:
                assert oracle.can_terminate
            # An unlimited run under any strategy is the whole truth.
            if not partial.limited:
                assert _fingerprints(partial) == truth
                assert partial.can_terminate == oracle.can_terminate

    def test_raise_mode_still_raises_for_guided(self):
        from repro.errors import ExplorationLimitError

        graph = graph_of(corridor(4, 3))
        with pytest.raises(ExplorationLimitError):
            explore(graph, state_limit=5, strategy="astar")

    def test_truncated_beam_is_limited(self):
        graph = graph_of(corridor(4, 3))
        result = explore(
            graph,
            state_limit=GENEROUS,
            strategy="beam",
            beam_width=2,
            on_limit="partial",
        )
        assert result.truncated and result.limited


class TestWitnessParity:
    @FAST
    @given(small_programs())
    def test_witness_searches_agree(self, program):
        graph = graph_of(program)
        bfs = search_anomaly_witness(
            graph, kind="any", state_limit=GENEROUS
        )
        astar = search_anomaly_witness(
            graph, kind="any", state_limit=GENEROUS, strategy="astar"
        )
        beam = search_anomaly_witness(
            graph,
            kind="any",
            state_limit=GENEROUS,
            strategy="beam",
            beam_width=FULL_WIDTH,
        )
        assert not (bfs.limited or astar.limited or beam.limited)
        assert astar.refuted == bfs.refuted == beam.refuted
        if bfs.witness is not None:
            # A* runs on a consistent heuristic: its witness is
            # shortest, i.e. exactly as long as the BFS one.
            assert astar.witness is not None
            assert len(astar.witness.schedule) == len(bfs.witness.schedule)
            assert beam.witness is not None
            for outcome in (bfs, astar, beam):
                _assert_valid_witness(graph, outcome.witness)

    def test_deadlock_witnesses_match_on_corridor(self):
        graph = graph_of(corridor(4, 2))
        bfs = search_anomaly_witness(
            graph, kind="deadlock", state_limit=GENEROUS
        )
        astar = search_anomaly_witness(
            graph, kind="deadlock", state_limit=GENEROUS, strategy="astar"
        )
        assert bfs.witness is not None and astar.witness is not None
        assert len(astar.witness.schedule) == len(bfs.witness.schedule)
        assert astar.witness.is_deadlock
        _assert_valid_witness(graph, astar.witness)
        # The headline: guidance reaches the witness in strictly fewer
        # states than blind BFS on the flagship family.
        assert astar.states < bfs.states

    def test_tight_budget_witness_still_definite(self):
        # A witness found before exhaustion is returned even when the
        # search is limited — for every strategy.
        graph = graph_of(corridor(4, 2))
        baseline = search_anomaly_witness(
            graph, kind="deadlock", state_limit=GENEROUS, strategy="astar"
        )
        budget = baseline.states  # enough to find it, not to finish
        outcome = search_anomaly_witness(
            graph, kind="deadlock", state_limit=budget, strategy="astar"
        )
        assert outcome.witness is not None
        assert outcome.witness.is_deadlock
        _assert_valid_witness(graph, outcome.witness)

    def test_guided_confirms_under_budget_where_bfs_drowns(self):
        # The acceptance scenario: one budget, three answers — BFS is
        # inconclusive, A* confirms with a concrete schedule.
        graph = graph_of(corridor(6, 4))
        astar = search_anomaly_witness(
            graph, kind="deadlock", state_limit=2_000, strategy="astar"
        )
        assert astar.witness is not None
        bfs = search_anomaly_witness(
            graph, kind="deadlock", state_limit=2_000
        )
        assert bfs.witness is None and bfs.limited


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------


@pytest.fixture
def corridor_file(tmp_path):
    path = tmp_path / "corridor.adl"
    path.write_text(pretty(corridor(3, 2)))
    return path


@pytest.fixture
def crossed_file(tmp_path):
    path = tmp_path / "crossed.adl"
    path.write_text(CROSSED_SRC)
    return path


class TestCLI:
    def test_strategy_lands_in_json_stats(self, corridor_file, capsys):
        from repro.cli import main

        code = main(
            [
                str(corridor_file),
                "--algorithm",
                "exact",
                "--strategy",
                "astar",
                "--json",
            ]
        )
        assert code == 1  # corridor deadlocks
        payload = json.loads(capsys.readouterr().out)
        stats = payload["deadlock"]["stats"]
        assert stats["strategy"] == "astar"
        assert stats["deadlock_waves"] >= 1

    def test_beam_stats_include_width_and_truncation(
        self, corridor_file, capsys
    ):
        from repro.cli import main

        main(
            [
                str(corridor_file),
                "--algorithm",
                "exact",
                "--strategy",
                "beam",
                "--beam-width",
                "4",
                "--json",
            ]
        )
        stats = json.loads(capsys.readouterr().out)["deadlock"]["stats"]
        assert stats["strategy"] == "beam"
        assert stats["beam_width"] == 4
        assert "beam_truncated" in stats

    def test_beam_width_without_beam_exits_two(self, crossed_file, capsys):
        from repro.cli import main

        assert main([str(crossed_file), "--beam-width", "8"]) == 2
        assert "beam_width" in capsys.readouterr().err

    def test_guided_reference_backend_exits_two(self, crossed_file, capsys):
        from repro.cli import main

        code = main(
            [
                str(crossed_file),
                "--strategy",
                "astar",
                "--backend",
                "reference",
            ]
        )
        assert code == 2
        assert "backend" in capsys.readouterr().err

    def test_confirm_with_guided_strategy(self, crossed_file, capsys):
        from repro.cli import main

        code = main([str(crossed_file), "--confirm", "--strategy", "astar"])
        assert code == 1
        out = capsys.readouterr().out
        assert "confirmation: " in out
        assert "confirmed-deadlock" in out

    def test_strategy_smoke_subprocess(self, corridor_file):
        """End-to-end: the real entry point with guided flags."""
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(corridor_file),
                "--algorithm",
                "exact",
                "--strategy",
                "beam",
                "--beam-width",
                "64",
                "--json",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["deadlock"]["stats"]["strategy"] == "beam"

    def test_bad_combo_smoke_subprocess(self, crossed_file):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(crossed_file),
                "--strategy",
                "dfs",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2

"""Concrete interpreter and scheduler tests."""

import pytest

from repro.errors import SimulationError
from repro.interp.runtime import sample_runs
from repro.interp.scheduler import TaskThread, run_program
from repro.lang.parser import parse_program


class TestRunProgram:
    def test_handshake_completes(self, handshake):
        result = run_program(handshake, seed=1)
        assert result.completed
        assert len(result.trace) == 2
        assert result.trace[0][2].message == "sig1"

    def test_crossed_deadlocks_every_time(self, crossed):
        for seed in range(5):
            result = run_program(crossed, seed=seed)
            assert result.status == "stuck"
            assert set(result.deadlock_tasks) == {"t1", "t2"}
            assert result.stall_tasks == ()

    def test_unmatched_send_is_runtime_stall(self, stall_program):
        result = run_program(stall_program)
        assert result.status == "stuck"
        assert result.stall_tasks == ("t1",)

    def test_loops_bounded(self):
        p = parse_program(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        # must terminate one way or another under the iteration cap
        result = run_program(p, seed=3, max_loop_iters=4)
        assert result.status in ("completed", "stuck")

    def test_max_steps_guard(self):
        p = parse_program(
            "program p;"
            "task a is begin send b.m; send b.m; end;"
            "task b is begin accept m; accept m; end;"
        )
        with pytest.raises(SimulationError):
            run_program(p, max_steps=1)

    def test_trace_records_sender_accepter(self, handshake):
        result = run_program(handshake)
        sender, accepter, signal = result.trace[0]
        assert (sender, accepter) == ("t1", "t2")
        assert signal.task == "t2"


class TestDataFlow:
    def test_bound_variable_transfers_value(self):
        # t fixes v := true and communicates it: tp's guard must follow
        # it, so the co-dependent rendezvous always completes
        p = parse_program(
            "program p;"
            "task t is begin v := true; send tp.s; send tp.r; end;"
            "task tp is begin accept s (v); if v then accept r; end if; end;"
        )
        for seed in range(10):
            assert run_program(p, seed=seed).completed

    def test_false_guard_skips_rendezvous(self):
        p = parse_program(
            "program p;"
            "task t is begin v := false; send tp.s; "
            "if v then send tp.r; end if; end;"
            "task tp is begin accept s (v); if v then accept r; end if; end;"
        )
        for seed in range(10):
            assert run_program(p, seed=seed).completed

    def test_codependent_program_never_stalls(self, corpus):
        summary = sample_runs(corpus["fig5d"].program, runs=50)
        assert summary.completed == 50


class TestSampling:
    def test_summary_aggregates(self, crossed):
        summary = sample_runs(crossed, runs=10)
        assert summary.runs == 10
        assert summary.stuck == 10
        assert summary.ever_deadlocked
        assert not summary.ever_stalled
        assert summary.example_deadlock is not None

    def test_order_dependent_deadlock_sampled(self):
        from repro.workloads.patterns import client_server

        summary = sample_runs(client_server(2, 1, shared_reply=True), runs=60)
        assert summary.completed > 0
        assert summary.deadlock_runs > 0

    def test_describe(self, handshake):
        summary = sample_runs(handshake, runs=3)
        assert "3 runs" in summary.describe()


class TestTaskThread:
    def test_remaining_statements_include_pending(self, handshake):
        import random

        thread = TaskThread(handshake.task("t1"), random.Random(0))
        req = thread.advance()
        assert req is not None
        remaining = list(thread.remaining_statements())
        assert req.stmt in remaining
        assert len(remaining) >= 2  # pending send + upcoming accept

    def test_advance_is_idempotent_while_pending(self, handshake):
        import random

        thread = TaskThread(handshake.task("t1"), random.Random(0))
        assert thread.advance() is thread.advance()

    def test_done_after_body(self):
        import random

        p = parse_program(
            "program p; task a is begin x := 1; null; end;"
            "task b is begin null; end;"
        )
        thread = TaskThread(p.task("a"), random.Random(0))
        assert thread.advance() is None
        assert thread.done
        assert thread.env["x"] == 1

"""Program composition utilities."""

import pytest

import repro
from repro.errors import ValidationError
from repro.lang.compose import (
    add_handshake,
    parallel_compose,
    prefix_program,
    rename_tasks,
)
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import explore
from repro.workloads.patterns import crossed_pair, handshake_chain, pipeline


class TestRename:
    def test_send_targets_rewritten(self, handshake):
        renamed = rename_tasks(handshake, {"t2": "server"})
        assert renamed.task_names == ("t1", "server")
        send = renamed.task("t1").body[0]
        assert send.task == "server"

    def test_rename_inside_compounds(self):
        p = parse_program(
            "program p; task a is begin if ? then send b.m; end if; "
            "while ? loop send b.n; end loop; end;"
            "task b is begin accept m; accept n; end;"
        )
        renamed = rename_tasks(p, {"b": "sink"})
        text = repro.pretty(renamed)
        assert "send sink.m" in text and "send sink.n" in text
        assert "send b." not in text

    def test_collision_rejected(self, handshake):
        with pytest.raises(ValidationError):
            rename_tasks(handshake, {"t1": "t2"})

    def test_semantics_preserved(self, crossed):
        renamed = rename_tasks(crossed, {"t1": "left", "t2": "right"})
        assert explore(build_sync_graph(renamed)).has_deadlock


class TestPrefix:
    def test_all_names_prefixed(self, handshake):
        prefixed = prefix_program(handshake, "cell0")
        assert prefixed.task_names == ("cell0_t1", "cell0_t2")
        assert prefixed.name == "cell0_handshake"

    def test_procedures_prefixed_with_calls(self):
        p = parse_program(
            "program p; procedure q is begin send b.m; end;"
            "task a is begin call q; end;"
            "task b is begin accept m; end;"
        )
        prefixed = prefix_program(p, "x")
        assert prefixed.procedure_names == ("x_q",)
        assert prefixed.task("x_a").body[0].name == "x_q"
        assert repro.analyze(prefixed).deadlock.deadlock_free


class TestParallelCompose:
    def test_disjoint_union(self):
        a = prefix_program(pipeline(3, 1), "a")
        b = prefix_program(handshake_chain(3, 1), "b")
        combined = parallel_compose("combined", a, b)
        assert len(combined.tasks) == 6
        result = explore(build_sync_graph(combined))
        assert not result.has_anomaly

    def test_deadlock_in_any_part_is_global(self):
        clean = prefix_program(pipeline(3, 1), "clean")
        bad = prefix_program(crossed_pair(), "bad")
        combined = parallel_compose("combined", clean, bad)
        assert explore(build_sync_graph(combined)).has_deadlock
        assert not repro.analyze(combined).deadlock.deadlock_free

    def test_name_collision_rejected(self, handshake):
        with pytest.raises(ValidationError, match="prefix"):
            parallel_compose("dup", handshake, handshake)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_compose("empty")


class TestHandshakeBridge:
    def test_bridge_sequences_parts(self):
        a = prefix_program(pipeline(2, 1), "a")
        b = prefix_program(pipeline(2, 1), "b")
        combined = parallel_compose("bridged", a, b)
        bridged = add_handshake(combined, "a_stage1", "b_stage0", "baton")
        result = explore(build_sync_graph(bridged))
        assert not result.has_anomaly
        assert repro.analyze(bridged).deadlock.deadlock_free

    def test_opposed_bridges_stay_clean(self):
        # Both bridges attach at task ends, so the per-task orders stay
        # acyclic: a_stage1 hands off to b_stage0 after its pipeline
        # work, and b_stage1 hands back to a_stage0 after its own -
        # a valid global order exists and the composition is clean.
        a = prefix_program(pipeline(2, 1), "a")
        b = prefix_program(pipeline(2, 1), "b")
        combined = parallel_compose("cycle", a, b)
        bridged = add_handshake(combined, "a_stage1", "b_stage0", "x")
        bridged = add_handshake(bridged, "b_stage1", "a_stage0", "y")
        result = explore(build_sync_graph(bridged))
        assert not result.has_anomaly
        assert result.can_terminate

    def test_crossed_bridges_deadlock(self):
        # Bridging each part's FIRST task to wait on the other before
        # any local work creates a genuine cross wait.
        src = (
            "program p;"
            "task a1 is begin accept go_a; send a2.m; end;"
            "task a2 is begin accept m; end;"
            "task b1 is begin accept go_b; send b2.m; end;"
            "task b2 is begin accept m; end;"
        )
        program = parse_program(src)
        bridged = add_handshake(program, "a2", "b1", "go_b")
        bridged = add_handshake(bridged, "b2", "a1", "go_a")
        result = explore(build_sync_graph(bridged))
        assert result.has_anomaly
        assert not result.can_terminate

    def test_unknown_endpoint_rejected(self, handshake):
        with pytest.raises(ValidationError, match="no task"):
            add_handshake(handshake, "t1", "ghost", "m")

    def test_same_endpoint_rejected(self, handshake):
        with pytest.raises(ValidationError):
            add_handshake(handshake, "t1", "t1", "m")

"""Semantic validation tests."""

import pytest

from repro.errors import ValidationError
from repro.lang.ast_nodes import Signal
from repro.lang.parser import parse_program
from repro.lang.validate import collect_signals, validate_program


class TestHardErrors:
    def test_duplicate_task_names(self):
        p = parse_program(
            "program p; task t is begin end; task t is begin end;"
        )
        with pytest.raises(ValidationError, match="duplicate"):
            validate_program(p)

    def test_send_to_unknown_task(self):
        p = parse_program("program p; task t is begin send ghost.m; end;")
        with pytest.raises(ValidationError, match="unknown task"):
            validate_program(p)

    def test_send_to_self(self):
        p = parse_program("program p; task t is begin send t.m; end;")
        with pytest.raises(ValidationError, match="itself"):
            validate_program(p)

    def test_send_inside_conditional_checked(self):
        p = parse_program(
            "program p; task t is begin if ? then send ghost.m; end if; end;"
        )
        with pytest.raises(ValidationError):
            validate_program(p)


class TestSignalCollection:
    def test_counts_per_signal(self):
        p = parse_program(
            "program p;"
            "task a is begin send b.m; send b.m; end;"
            "task b is begin accept m; end;"
        )
        counts = collect_signals(p)
        assert counts[Signal("b", "m")] == (2, 1)

    def test_counts_include_conditional_occurrences(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; end if; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        counts = collect_signals(p)
        assert counts[Signal("b", "m")] == (1, 1)

    def test_accept_signal_uses_own_task(self):
        p = parse_program(
            "program p; task a is begin accept m; end;"
            "task b is begin send a.m; end;"
        )
        assert Signal("a", "m") in collect_signals(p)


class TestSoftFindings:
    def test_unmatched_send_reported(self):
        p = parse_program(
            "program p; task a is begin send b.m; end; task b is begin end;"
        )
        report = validate_program(p)
        assert Signal("b", "m") in report.unmatched_sends
        assert not report.fully_matched
        (diag,) = report.diagnostics
        assert diag.rule_id == "ADL001"
        assert "never accepted" in diag.message
        assert diag.span is not None and diag.span.line == 1
        assert diag.task == "a"

    def test_unmatched_accept_reported(self):
        p = parse_program(
            "program p; task a is begin accept m; end;"
            "task b is begin null; end;"
        )
        report = validate_program(p)
        assert Signal("a", "m") in report.unmatched_accepts

    def test_clean_program_fully_matched(self, handshake):
        report = validate_program(handshake)
        assert report.fully_matched
        assert report.diagnostics == ()
        assert report.task_names == ("t1", "t2")

    def test_warnings_property_deprecated_but_equivalent(self):
        p = parse_program(
            "program p; task a is begin send b.m; end; task b is begin end;"
        )
        report = validate_program(p)
        with pytest.warns(DeprecationWarning):
            legacy = report.warnings
        assert legacy == [d.message for d in report.diagnostics]

"""Deadlock detection algorithms: naive, refined, extensions, constraint 4.

These tests pin down the paper's qualitative claims:

* both algorithms are conservative (never certify a deadlocking
  program);
* the refined algorithm eliminates spurious cycles the naive one
  reports (Figure 1 narrative, Lemma 2, constraint 3a);
* the extensions form a precision spectrum;
* constraint 4 eliminates the Figure-3 cycle.
"""

import pytest

from repro.analysis.constraint4 import (
    breakable_nodes,
    constraint4_deadlock_analysis,
    find_breaker,
)
from repro.analysis.extensions import (
    combined_pairs_analysis,
    head_pairs_analysis,
    head_tail_analysis,
)
from repro.analysis.naive import naive_deadlock_analysis
from repro.analysis.orderings import compute_orderings
from repro.analysis.refined import possible_heads, refined_deadlock_analysis
from repro.analysis.results import Verdict
from repro.errors import AnalysisError
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import exact_deadlock

ALL_DETECTORS = [
    naive_deadlock_analysis,
    refined_deadlock_analysis,
    constraint4_deadlock_analysis,
    head_pairs_analysis,
    head_tail_analysis,
    combined_pairs_analysis,
]

REFINED_FAMILY = ALL_DETECTORS[1:]


def graph_for(src):
    return build_sync_graph(parse_program(src))


class TestNaive:
    def test_certifies_handshake(self, handshake):
        report = naive_deadlock_analysis(build_sync_graph(handshake))
        assert report.deadlock_free
        assert report.verdict == Verdict.CERTIFIED_FREE

    def test_flags_crossed(self, crossed):
        report = naive_deadlock_analysis(build_sync_graph(crossed))
        assert not report.deadlock_free
        assert report.evidence
        assert report.evidence[0].tasks == {"t1", "t2"}

    def test_rejects_cyclic_control_flow(self):
        sg = graph_for(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        with pytest.raises(AnalysisError):
            naive_deadlock_analysis(sg)

    def test_stats_populated(self, handshake):
        report = naive_deadlock_analysis(build_sync_graph(handshake))
        assert report.stats["clg_nodes"] == 10


class TestPossibleHeads:
    def test_heads_need_sync_edge_and_successor(self, crossed):
        sg = build_sync_graph(crossed)
        heads = possible_heads(sg)
        assert {h.triple for h in heads} == {
            ("t2", "a", "+"),
            ("t1", "x", "+"),
        }

    def test_unmatched_node_not_a_head(self, stall_program):
        sg = build_sync_graph(stall_program)
        assert possible_heads(sg) == ()


class TestRefined:
    @pytest.mark.parametrize("detector", REFINED_FAMILY)
    def test_conservative_on_deadlocks(self, detector, crossed, fig2b):
        for program in (crossed, fig2b):
            sg = build_sync_graph(program)
            assert exact_deadlock(sg)
            assert not detector(sg).deadlock_free

    @pytest.mark.parametrize("detector", REFINED_FAMILY)
    def test_certifies_handshake(self, detector, handshake):
        assert detector(build_sync_graph(handshake)).deadlock_free

    def test_eliminates_cross_round_cycles(self, corpus):
        # Figure 1: naive reports spurious cycles, refined certifies.
        sg = build_sync_graph(corpus["fig1"].program)
        assert not naive_deadlock_analysis(sg).deadlock_free
        assert refined_deadlock_analysis(sg).deadlock_free

    def test_lemma2_rendezvousing_heads_eliminated(self, corpus):
        sg = build_sync_graph(corpus["fig5a"].program)
        assert not naive_deadlock_analysis(sg).deadlock_free
        assert refined_deadlock_analysis(sg).deadlock_free

    def test_evidence_names_head(self, crossed):
        report = refined_deadlock_analysis(build_sync_graph(crossed))
        assert all(e.head is not None for e in report.evidence)

    def test_precomputed_inputs_accepted(self, crossed):
        from repro.analysis.coexec import compute_coexec
        from repro.syncgraph.clg import build_clg

        sg = build_sync_graph(crossed)
        report = refined_deadlock_analysis(
            sg,
            clg=build_clg(sg),
            orderings=compute_orderings(sg),
            coexec=compute_coexec(sg),
        )
        assert not report.deadlock_free

    def test_alarm_subset_of_naive(self, corpus):
        # refined alarms imply naive alarms (it only removes cycles)
        for entry in corpus.values():
            from repro.transforms.unroll import remove_loops

            program, _ = remove_loops(entry.program)
            sg = build_sync_graph(program)
            naive = naive_deadlock_analysis(sg)
            refined = refined_deadlock_analysis(sg)
            if naive.deadlock_free:
                assert refined.deadlock_free


class TestExtensions:
    def test_precision_spectrum_is_monotone_on_corpus(self, corpus):
        from repro.transforms.unroll import remove_loops

        for entry in corpus.values():
            program, _ = remove_loops(entry.program)
            sg = build_sync_graph(program)
            base = refined_deadlock_analysis(sg).deadlock_free
            pairs = head_pairs_analysis(sg).deadlock_free
            ht = head_tail_analysis(sg).deadlock_free
            combined = combined_pairs_analysis(sg).deadlock_free
            # anything the base certifies, the extensions must too
            if base:
                assert pairs and ht and combined

    def test_head_pairs_skips_invalid_pairs(self, handshake):
        report = head_pairs_analysis(build_sync_graph(handshake))
        assert report.deadlock_free
        # the handshake pair is sync-connected: no pair hypothesis runs
        assert report.stats["pairs_examined"] == 0

    def test_combined_hypothesis_budget(self, crossed):
        with pytest.raises(AnalysisError):
            combined_pairs_analysis(
                build_sync_graph(crossed), max_hypotheses=0
            )


class TestConstraint4:
    def test_figure3_breaker_found(self, corpus):
        sg = build_sync_graph(corpus["fig3"].program)
        orderings = compute_orderings(sg)
        t = next(
            n
            for n in sg.nodes_of_task("b")
            if n.kind == "accept"
            and not list(sg.control_predecessors(n))[0].is_rendezvous
        )
        w = find_breaker(sg, t, orderings)
        assert w is not None
        assert w.task == "c"

    def test_figure3_certified_only_with_constraint4(self, corpus):
        sg = build_sync_graph(corpus["fig3"].program)
        assert not refined_deadlock_analysis(sg).deadlock_free
        assert constraint4_deadlock_analysis(sg).deadlock_free

    def test_crossed_deadlock_heads_not_breakable(self, crossed):
        # The two accepts ARE breakable (they can never be reached
        # waiting: reaching one forces the other task past its send),
        # but the send heads that actually deadlock must not be.
        sg = build_sync_graph(crossed)
        breakable = breakable_nodes(sg)
        assert all(n.kind == "accept" for n in breakable)
        assert not constraint4_deadlock_analysis(sg).deadlock_free

    def test_stats_report_breakable_count(self, corpus):
        sg = build_sync_graph(corpus["fig3"].program)
        report = constraint4_deadlock_analysis(sg)
        assert report.stats["breakable_nodes"] >= 1


class TestKPairs:
    def test_k2_delegates_to_combined(self, crossed):
        from repro.analysis.extensions import k_pairs_analysis

        report = k_pairs_analysis(build_sync_graph(crossed), k=2)
        assert report.algorithm == "refined+k-pairs(2)"
        assert not report.deadlock_free

    def test_k3_flags_three_task_ring(self):
        from repro.analysis.extensions import k_pairs_analysis

        sg = graph_for(
            "program p;"
            "task a is begin send b.m1; accept m3; end;"
            "task b is begin send c.m2; accept m1; end;"
            "task c is begin send a.m3; accept m2; end;"
        )
        assert exact_deadlock(sg)
        assert not k_pairs_analysis(sg, k=3).deadlock_free

    def test_k3_flags_two_task_cycle_via_exhaustive_search(self, crossed):
        from repro.analysis.extensions import k_pairs_analysis

        report = k_pairs_analysis(build_sync_graph(crossed), k=3)
        assert not report.deadlock_free
        # the triple hypotheses cannot fire with 2 tasks; the
        # restricted search must have produced the evidence
        assert report.stats["k_tuples_examined"] == 0

    def test_k3_certifies_clean_programs(self, handshake, corpus):
        from repro.analysis.extensions import k_pairs_analysis
        from repro.transforms.unroll import remove_loops

        assert k_pairs_analysis(build_sync_graph(handshake), k=3).deadlock_free
        program, _ = remove_loops(corpus["fig1"].program)
        assert k_pairs_analysis(
            build_sync_graph(program), k=3
        ).deadlock_free

    def test_k_validation(self, handshake):
        from repro.analysis.extensions import k_pairs_analysis

        with pytest.raises(ValueError):
            k_pairs_analysis(build_sync_graph(handshake), k=1)

    def test_hypothesis_budget(self):
        from repro.analysis.extensions import k_pairs_analysis
        from repro.errors import AnalysisError
        from repro.workloads.patterns import handshake_chain

        sg = build_sync_graph(handshake_chain(4, 2))
        with pytest.raises(AnalysisError):
            k_pairs_analysis(sg, k=3, max_hypotheses=1)

    def test_k4_runs_on_four_task_ring(self):
        from repro.analysis.extensions import k_pairs_analysis

        sg = graph_for(
            "program p;"
            "task a is begin send b.m1; accept m4; end;"
            "task b is begin send c.m2; accept m1; end;"
            "task c is begin send d.m3; accept m2; end;"
            "task d is begin send a.m4; accept m3; end;"
        )
        assert exact_deadlock(sg)
        assert not k_pairs_analysis(sg, k=4).deadlock_free

"""Exhaustive feasible-wave exploration tests."""

import pytest

from repro.errors import ExplorationLimitError
from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.waves.explore import exact_anomaly, exact_deadlock, explore
from repro.workloads.patterns import (
    client_server,
    dining_philosophers,
    pipeline,
    token_ring,
)


def graph_for(src):
    return build_sync_graph(parse_program(src))


class TestVerdicts:
    def test_handshake_terminates_cleanly(self, handshake):
        result = explore(build_sync_graph(handshake))
        assert result.can_terminate
        assert not result.has_anomaly

    def test_crossed_deadlocks(self, crossed):
        result = explore(build_sync_graph(crossed))
        assert result.has_deadlock
        assert not result.can_terminate
        assert not result.has_stall

    def test_fig2b_deadlocks(self, fig2b):
        assert exact_deadlock(build_sync_graph(fig2b))

    def test_stall_detected(self, stall_program):
        result = explore(build_sync_graph(stall_program))
        assert result.has_stall
        assert not result.has_deadlock
        assert exact_anomaly(build_sync_graph(stall_program))

    def test_order_dependent_deadlock_found(self):
        # shared request signal: one schedule completes, another deadlocks
        result = explore(build_sync_graph(client_server(2, 1, shared_reply=True)))
        assert result.can_terminate  # the good schedule exists
        assert result.has_deadlock  # and so does the bad one

    def test_deadlock_head_nodes_collected(self, crossed):
        result = explore(build_sync_graph(crossed))
        heads = result.deadlock_head_nodes()
        assert {n.triple for n in heads} == {
            ("t2", "a", "+"),
            ("t1", "x", "+"),
        }


class TestPatterns:
    def test_philosophers_deadlock_variant(self):
        assert exact_deadlock(build_sync_graph(dining_philosophers(3, True)))

    def test_philosophers_safe_variant(self):
        result = explore(build_sync_graph(dining_philosophers(3, False)))
        assert not result.has_deadlock
        assert result.can_terminate

    def test_pipeline_clean(self):
        result = explore(build_sync_graph(pipeline(4, 2)))
        assert not result.has_anomaly
        assert result.can_terminate

    def test_token_ring_clean(self):
        result = explore(build_sync_graph(token_ring(4, 2)))
        assert not result.has_anomaly


class TestLimits:
    def test_state_limit_raises(self):
        sg = build_sync_graph(dining_philosophers(4, True))
        with pytest.raises(ExplorationLimitError):
            explore(sg, state_limit=5)

    def test_visited_count_reported(self, handshake):
        result = explore(build_sync_graph(handshake))
        assert result.visited_count == 3  # init, mid, terminal

    def test_exploration_terminates_with_control_cycles(self):
        # loops leave cycles in E_C; the wave space is still finite
        sg = graph_for(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        result = explore(sg)
        assert result.visited_count < 30

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.transforms.unroll import remove_loops
from repro.workloads.corpus import paper_corpus

HANDSHAKE_SRC = """
program handshake;
task t1 is begin send t2.sig1; accept sig2; end;
task t2 is begin accept sig1; send t1.sig2; end;
"""

CROSSED_SRC = """
program crossed;
task t1 is begin send t2.a; accept x; end;
task t2 is begin send t1.x; accept a; end;
"""

FIG2B_SRC = """
program fig2b;
task t1 is begin accept a; send t2.b; end;
task t2 is begin accept b; send t1.a; end;
"""

STALL_SRC = """
program stall;
task t1 is begin send t2.m; end;
task t2 is begin null; end;
"""


@pytest.fixture
def handshake():
    return parse_program(HANDSHAKE_SRC)


@pytest.fixture
def crossed():
    return parse_program(CROSSED_SRC)


@pytest.fixture
def fig2b():
    return parse_program(FIG2B_SRC)


@pytest.fixture
def stall_program():
    return parse_program(STALL_SRC)


@pytest.fixture(scope="session")
def corpus():
    return paper_corpus()


def graph_of(program):
    """Sync graph of ``program`` after loop removal (helper, not fixture)."""
    transformed, _ = remove_loops(program)
    return build_sync_graph(transformed)

"""Tests for repro.repair: generation, certification, ranking, emission.

The acceptance contract for the repair pipeline:

* over the convicted showcase corpus (plus the convicted analysis- and
  lint-corpus programs), at least 70% of programs get >= 1 certified
  fix;
* every certified fix re-parses and re-analyzes deadlock-free on the
  indexed backend;
* fixes round-trip the SARIF shape validator when attached to the
  deadlock diagnostics;
* the ``repair.candidates_rejected`` counter is non-zero on real
  convictions — the verifier demonstrably filters.
"""

import json

import pytest

import repro
from repro import obs
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lint import (
    RepairAttachment,
    lint_source,
    sarif_report,
    validate_sarif_shape,
)
from repro.repair import (
    generate_candidates,
    rank_fixes,
    suggest_repairs,
    unified_fix_diff,
    verify_candidates,
)
from repro.repair.model import CertifiedFix, RepairCandidate, changed_tasks
from repro.reporting import (
    SCHEMA_VERSION,
    analysis_result_to_dict,
    repair_report_to_dict,
)
from repro.workloads.adl_corpus import (
    load_adl,
    load_lint_adl,
    repair_corpus,
)

CROSSED = """
program crossed;
task a is begin send b.x; accept y; end;
task b is begin send a.y; accept x; end;
"""


def _convicted(source):
    result = repro.analyze(source)
    assert not result.deadlock.deadlock_free
    return result


class TestGenerator:
    def test_candidates_are_deterministic_and_unique(self):
        result = _convicted(CROSSED)
        first = generate_candidates(result)
        second = generate_candidates(result)
        assert [c.description for c in first] == [
            c.description for c in second
        ]
        sources = [c.source for c in first]
        assert len(sources) == len(set(sources))
        assert pretty(result.program) not in sources

    def test_candidate_cap(self):
        result = _convicted(repair_corpus()["dining_philosophers"].source)
        assert len(generate_candidates(result, max_candidates=7)) == 7

    def test_candidates_carry_spans_from_parsed_source(self):
        result = _convicted(CROSSED)
        swaps = [
            c for c in generate_candidates(result)
            if c.kind == "swap_adjacent"
        ]
        assert swaps
        for cand in swaps:
            assert cand.spans, cand.description
            assert all(span.line >= 1 for span in cand.spans)

    def test_every_candidate_reparses(self):
        result = _convicted(repair_corpus()["late_ack"].source)
        for cand in generate_candidates(result):
            reparsed = parse_program(cand.source)
            assert pretty(reparsed) == cand.source

    def test_guard_candidates_exist_to_be_rejected(self):
        # Guarding a rendezvous never removes it from any wave under
        # the all-paths-executable model, so guards are generated but
        # must never certify on a real deadlock cycle.
        result = _convicted(CROSSED)
        cands = generate_candidates(result)
        guards = [c for c in cands if c.kind == "guard"]
        assert guards
        fixes, _ = verify_candidates(result, guards)
        assert fixes == []


class TestVerifier:
    def test_rejection_counter_increments(self):
        result = _convicted(CROSSED)
        session = obs.enable()
        try:
            report = suggest_repairs(result=result)
        finally:
            obs.disable()
        assert report.candidates_rejected > 0
        assert (
            session.registry.counter_value("repair.candidates_rejected")
            == report.candidates_rejected
        )
        # The counter sees every certification, before max_fixes trims.
        assert session.registry.counter_value("repair.fixes_certified") == (
            report.stats["certified_static"]
            + report.stats["certified_exact"]
        )

    def test_stats_partition_candidates(self):
        result = _convicted(CROSSED)
        report = suggest_repairs(result=result, max_fixes=64)
        stats = report.stats
        assert (
            stats["certified_static"]
            + stats["certified_exact"]
            + stats["rejected_failed"]
            + stats["rejected_still_convicted"]
            + stats["rejected_confirmed_deadlock"]
            == report.candidates_generated
        )
        assert len(report.fixes) == (
            stats["certified_static"] + stats["certified_exact"]
        )
        # The crossed pair is tiny: every convicted candidate's exact
        # escalation finishes, so each rejection carries a concrete
        # deadlock wave rather than an unsettled conviction.
        assert stats["rejected_still_convicted"] == 0
        assert stats["rejected_confirmed_deadlock"] > 0

    def test_exact_escalation_rescues_refined_false_alarms(self):
        # Reordered dining philosophers stay convicted by the static
        # CLG analysis (the cycle shape survives) but are exactly free:
        # only the WaveIndex escalation can certify those fixes.
        report = suggest_repairs(
            repair_corpus()["dining_philosophers"].source
        )
        assert report.fixed
        assert all(f.certified_by == "exact-waves" for f in report.fixes)

    def test_zero_exact_budget_disables_escalation(self):
        report = suggest_repairs(
            repair_corpus()["dining_philosophers"].source, exact_budget=0
        )
        assert not report.fixed
        assert report.stats["certified_exact"] == 0

    def test_repair_corpus_escalations_all_settle(self):
        # The adl_repair programs are small enough that every exact
        # escalation finishes within the default budget: no rejection
        # is left unsettled, and a guided strategy — which can only
        # change what a *limited* budget buys — lands on identical
        # stats.
        for name in ("crossed_greeting", "late_ack"):
            source = repair_corpus()[name].source
            bfs = suggest_repairs(source).stats
            astar = suggest_repairs(source, strategy="astar").stats
            assert bfs["rejected_still_convicted"] == 0, name
            assert astar == bfs, name

    def test_guided_escalation_settles_where_bfs_cannot(self):
        # On a corridor-sized candidate space a 200-state budget
        # drowns blind BFS (every still-convicted candidate stays
        # unsettled), while A* walks to a concrete deadlock wave and
        # rejects with proof — same budget, same candidates.
        from repro.lang.pretty import pretty
        from repro.workloads.patterns import corridor

        source = pretty(corridor(6, 4))
        bfs = suggest_repairs(source, exact_budget=200).stats
        astar = suggest_repairs(
            source, exact_budget=200, strategy="astar"
        ).stats
        assert bfs["rejected_confirmed_deadlock"] == 0
        assert bfs["rejected_still_convicted"] > 0
        assert astar["rejected_confirmed_deadlock"] > 0
        assert (
            astar["rejected_still_convicted"]
            < bfs["rejected_still_convicted"]
        )
        # Certifications are budget-independent facts; the strategies
        # must agree on them.
        assert astar["certified_static"] == bfs["certified_static"]
        assert astar["certified_exact"] == bfs["certified_exact"]


class TestRanking:
    def test_reorderings_rank_before_deletions(self):
        report = suggest_repairs(CROSSED, max_fixes=10)
        kinds = [f.kind for f in report.fixes]
        assert kinds[0] == "swap_adjacent"
        if "delete" in kinds:
            assert kinds.index("delete") > kinds.index("swap_adjacent")

    def test_stall_introducing_fixes_rank_last(self):
        report = suggest_repairs(CROSSED, max_fixes=10)
        flags = [f.introduced_stall for f in report.fixes]
        assert flags == sorted(flags)

    def test_rank_is_deterministic(self):
        def fix(kind, size, stall=False):
            cand = RepairCandidate(
                kind=kind,
                description=f"{kind}-{size}",
                program=parse_program(CROSSED),
                edit_size=size,
            )
            return CertifiedFix(
                candidate=cand,
                certified_by="refined",
                stall_verdict="certified-stall-free",
                introduced_stall=stall,
            )

        fixes = [
            fix("delete", 1),
            fix("swap_adjacent", 2, stall=True),
            fix("move", 3),
            fix("swap_adjacent", 2),
            fix("insert_accept", 1),
        ]
        ranked = rank_fixes(fixes)
        assert [f.kind for f in ranked] == [
            "swap_adjacent",
            "move",
            "insert_accept",
            "delete",
            "swap_adjacent",
        ]
        assert ranked[-1].introduced_stall


class TestAcceptance:
    """The headline contract: the convicted corpus gets fixed."""

    @pytest.fixture(scope="class")
    def convicted_reports(self):
        sources = {
            entry.name: entry.source
            for entry in repair_corpus().values()
        }
        sources["atm_deadlock"] = load_adl("atm_deadlock")
        sources["coupled_protocol"] = load_lint_adl("coupled_protocol")
        reports = {}
        for name, source in sources.items():
            result = repro.analyze(source)
            assert not result.deadlock.deadlock_free, name
            reports[name] = (
                source,
                result,
                suggest_repairs(result=result),
            )
        return reports

    def test_corpus_is_really_deadlocked(self):
        for entry in repair_corpus().values():
            exact = repro.analyze(entry.source, exact=True)
            assert not exact.deadlock.deadlock_free, entry.name
            assert not exact.deadlock.stats["exploration_limited"]

    def test_fix_rate_at_least_70_percent(self, convicted_reports):
        assert len(convicted_reports) >= 10
        fixed = [
            name
            for name, (_, _, report) in convicted_reports.items()
            if report.fixed
        ]
        rate = len(fixed) / len(convicted_reports)
        assert rate >= 0.7, f"fix rate {rate:.0%}: only {sorted(fixed)}"

    def test_expected_fix_kinds_certify(self, convicted_reports):
        for entry in repair_corpus().values():
            _, _, report = convicted_reports[entry.name]
            kinds = {f.kind for f in report.fixes}
            assert kinds & set(entry.fix_kinds), (
                f"{entry.name}: wanted one of {entry.fix_kinds}, "
                f"got {sorted(kinds)}"
            )

    def test_every_fix_reparses_and_reanalyzes_free(self, convicted_reports):
        for name, (_, _, report) in convicted_reports.items():
            for fix in report.fixes:
                repaired = parse_program(fix.source)
                check = repro.analyze(repaired, backend="index")
                if fix.certified_by == "exact-waves":
                    check = repro.analyze(
                        repaired, exact=True, backend="index"
                    )
                assert check.deadlock.deadlock_free, (name, fix.kind)

    def test_every_rejection_is_counted(self, convicted_reports):
        for name, (_, _, report) in convicted_reports.items():
            assert report.candidates_rejected > 0, name
            assert (
                report.candidates_generated
                >= report.candidates_rejected + len(report.fixes)
            )

    def test_sarif_fixes_round_trip_validation(self, convicted_reports):
        results = []
        repairs = {}
        for name, (source, result, report) in convicted_reports.items():
            path = f"{name}.adl"
            results.append(lint_source(source, path=path))
            if report.fixed:
                repairs[path] = RepairAttachment(
                    program=result.program, report=report, source=source
                )
        doc = sarif_report(results, repairs=repairs)
        assert validate_sarif_shape(doc) == []
        attached = [
            res
            for res in doc["runs"][0]["results"]
            if res.get("fixes")
        ]
        assert attached, "no SARIF result carries fixes"
        for res in attached:
            assert res["ruleId"] in ("ADL010", "ADL012")
            for fix in res["fixes"]:
                for change in fix["artifactChanges"]:
                    assert change["replacements"]


class TestEmission:
    def test_json_repair_payload(self):
        result = _convicted(CROSSED)
        report = suggest_repairs(result=result)
        payload = analysis_result_to_dict(result, repair=report)
        assert payload["schema_version"] == SCHEMA_VERSION == 4
        repair = payload["repair"]
        assert repair["fixed"] is True
        assert repair["candidates_rejected"] > 0
        fix = repair["fixes"][0]
        assert fix["diff"].startswith("---")
        assert fix["changed_tasks"]
        json.dumps(payload)  # stays JSON-serializable

    def test_repair_report_to_dict_without_original(self):
        report = suggest_repairs(CROSSED)
        payload = repair_report_to_dict(report)
        assert "diff" not in payload["fixes"][0]
        json.dumps(payload)

    def test_unified_diff_shows_the_edit(self):
        result = _convicted(CROSSED)
        report = suggest_repairs(result=result)
        fix = report.fixes[0]
        diff = unified_fix_diff(result.program, fix, path="crossed.adl")
        assert "--- crossed.adl" in diff
        assert f"(fix: {fix.kind})" in diff
        assert any(line.startswith("+") for line in diff.splitlines())

    def test_changed_tasks_identifies_the_edit(self):
        result = _convicted(CROSSED)
        report = suggest_repairs(result=result)
        fix = report.fixes[0]
        changed = changed_tasks(result.program, fix.candidate.program)
        assert changed
        assert set(changed) <= set(result.program.task_names)

    def test_sarif_whole_file_fallback_for_spanless_programs(self):
        # Programs built programmatically (or pretty-printed) may lack
        # decl_loc spans on the *attachment* side; the fix then rewrites
        # the whole artifact.
        source = CROSSED
        result = _convicted(source)
        report = suggest_repairs(result=result)
        parsed = parse_program(source)
        spanless = parsed.with_tasks(
            [type(t)(name=t.name, body=t.body) for t in parsed.tasks]
        )
        attachment = RepairAttachment(
            program=spanless, report=report, source=source
        )
        lint_result = lint_source(source, path="spanless.adl")
        doc = sarif_report(
            [lint_result], repairs={"spanless.adl": attachment}
        )
        assert validate_sarif_shape(doc) == []
        fixes = [
            fix
            for res in doc["runs"][0]["results"]
            for fix in res.get("fixes", [])
        ]
        assert fixes
        replacement = fixes[0]["artifactChanges"][0]["replacements"][0]
        assert replacement["deletedRegion"]["startLine"] == 1
        assert replacement["insertedContent"]["text"].startswith(
            "program crossed;"
        )

    def test_suggest_repairs_on_free_program_is_empty(self):
        report = suggest_repairs(
            """
            program fine;
            task a is begin send b.x; end;
            task b is begin accept x; end;
            """
        )
        assert not report.fixed
        assert report.candidates_generated == 0
        assert report.original_verdict == "certified-deadlock-free"

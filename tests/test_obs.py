"""Observability layer: tracer, metrics registry, exporters, wiring."""

import json
import re

import pytest

import repro
from repro import obs
from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    session_to_dict,
    session_to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

# Exercises all three headline pruning rules at once: fig1's two-round
# handshake (sequenceable + coaccept marks) plus a fig4c-style branch
# whose arms are not co-executable.
PRUNING_SRC = """
program pruner;
task t1 is
begin
    send t2.sig1;
    accept sig2;
    send t2.sig1;
    accept sig2;
    if ? then
        accept m1;
        send t3.n1;
    else
        accept m2;
        send t4.n2;
    end if;
end;
task t2 is
begin
    accept sig1;
    send t1.sig2;
    accept sig1;
    send t1.sig2;
end;
task t3 is
begin
    accept n1;
    send t1.m2;
end;
task t4 is
begin
    accept n2;
    send t1.m1;
end;
"""


class TestTracer:
    def test_span_nesting_follows_dynamic_scope(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b", label="x"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[1].attributes == {"label": "x"}

    def test_span_timing_recorded_and_contains_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration_s is not None and outer.duration_s >= 0
        assert inner.duration_s is not None
        assert outer.duration_s >= inner.duration_s

    def test_render_tree_shows_names_and_attrs(self):
        tracer = Tracer()
        with tracer.span("phase", nodes=3):
            with tracer.span("child"):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert "phase" in lines[0] and "nodes=3" in lines[0]
        assert "child" in lines[1]
        assert lines[1].index("child") > lines[0].index("phase")


class TestRegistry:
    def test_counter_identity_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("x", rule="seq")
        b = reg.counter("x", rule="seq")
        c = reg.counter("x", rule="other")
        a.inc()
        b.inc(2)
        assert a is b and a is not c
        assert reg.counter_value("x", rule="seq") == 3
        assert reg.counter_value("x", rule="other") == 0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (1, 5, 3):
            h.observe(v)
        assert (h.count, h.sum, h.min, h.max) == (3, 9, 1, 5)
        assert h.mean == pytest.approx(3.0)


class TestDisabledPath:
    def test_noop_when_disabled(self):
        assert not obs.is_enabled()
        # Writes to null instruments must not leak anywhere, and a
        # subsequent observed() scope must start from zero.
        obs.counter("ghost").inc(41)
        obs.gauge("ghost").set(41)
        obs.histogram("ghost").observe(41)
        with obs.span("ghost") as span:
            span.set_attribute("k", "v")
        with obs.observed() as session:
            pass
        snapshot = session_to_dict(session)
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == []

    def test_analyze_records_nothing_when_disabled(self, handshake):
        before = obs.current()
        repro.analyze(handshake)
        assert obs.current() is before is None

    def test_observed_restores_previous_session(self):
        with obs.observed() as outer:
            with obs.observed() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None


class TestPipelineInstrumentation:
    def test_analyze_produces_phase_spans(self, handshake):
        with obs.observed() as session:
            repro.analyze(handshake)
        names = {s.name for s in session.tracer.all_spans()}
        for expected in (
            "analyze",
            "analyze.parse",
            "analyze.validate",
            "analyze.inline",
            "analyze.unroll",
            "analyze.sync_graph",
            "analyze.deadlock",
            "analyze.stall",
            "refined.precompute",
            "refined.heads",
            "clg.build",
        ):
            assert expected in names
        durations = session_to_dict(session)["span_seconds"]
        assert durations["analyze"] > 0

    def test_refined_pruning_counters_nonzero(self):
        with obs.observed() as session:
            repro.analyze(PRUNING_SRC)
        reg = session.registry
        for rule in ("sequenceable", "not_coexec", "coaccept"):
            assert reg.counter_value("refined.pruned_nodes", rule=rule) > 0
            assert reg.counter_value("refined.pruned_edges", rule=rule) > 0
        assert reg.counter_value("refined.heads_examined") > 0
        assert reg.counter_value("refined.scc_passes") > 0

    def test_pruning_totals_mirrored_into_report_stats(self):
        with obs.observed():
            result = repro.analyze(PRUNING_SRC)
        pruning = result.deadlock.stats["pruning"]
        assert pruning["sequenceable_nodes"] > 0
        assert pruning["not_coexec_nodes"] > 0
        assert pruning["coaccept_nodes"] > 0

    def test_explore_counters(self, crossed):
        with obs.observed() as session:
            repro.analyze(crossed, algorithm="exact")
        reg = session.registry
        assert reg.counter_value("explore.states_visited") > 0
        assert reg.gauges[("explore.frontier_peak", ())].value >= 1
        assert reg.counter_value("explore.state_limit_hits") == 0

    def test_explore_state_limit_hit_counted(self, handshake):
        from repro.errors import ExplorationLimitError
        from repro.syncgraph.build import build_sync_graph
        from repro.waves.explore import explore

        graph = build_sync_graph(handshake)
        with obs.observed() as session:
            with pytest.raises(ExplorationLimitError):
                explore(graph, state_limit=1)
        assert session.registry.counter_value("explore.state_limit_hits") == 1

    def test_witness_search_counters(self, crossed):
        from repro.syncgraph.build import build_sync_graph
        from repro.waves.witness import find_anomaly_witness

        graph = build_sync_graph(crossed)
        with obs.observed() as session:
            witness = find_anomaly_witness(graph)
        assert witness is not None
        reg = session.registry
        assert reg.counter_value("witness.states_visited") > 0
        assert reg.counter_value("witness.state_limit_hits") == 0
        names = {s.name for s in session.tracer.all_spans()}
        assert "witness.search" in names

    def test_interp_scheduler_steps(self, handshake):
        from repro.interp.runtime import sample_runs

        with obs.observed() as session:
            sample_runs(handshake, runs=3)
        reg = session.registry
        assert reg.counter_value("interp.runs") == 3
        assert reg.counter_value("interp.scheduler_steps") >= 3

    def test_extensions_pair_counters(self, crossed):
        with obs.observed() as session:
            repro.analyze(crossed, algorithm="head-pairs")
        reg = session.registry
        assert (
            reg.counter_value(
                "extensions.pairs_enumerated", analysis="head-pairs"
            )
            > 0
        )


class TestExporters:
    def test_json_schema_stability(self):
        with obs.observed() as session:
            repro.analyze(PRUNING_SRC)
        snapshot = session_to_dict(session)
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert set(snapshot) == {
            "schema_version",
            "counters",
            "gauges",
            "histograms",
            "span_seconds",
            "spans",
        }
        # round-trips through JSON unchanged
        assert json.loads(json.dumps(snapshot)) == snapshot
        hist = next(iter(snapshot["histograms"].values()))
        assert set(hist) == {"count", "sum", "min", "max", "mean"}
        span = snapshot["spans"][0]
        assert set(span) == {"name", "duration_s", "attributes", "children"}

    def test_prometheus_lines_parse(self):
        with obs.observed() as session:
            repro.analyze(PRUNING_SRC)
        text = session_to_prometheus(session)
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r" [0-9eE.+-]+(\n|$)"
        )
        lines = text.splitlines()
        assert lines
        for line in lines:
            assert line_re.match(line), f"bad exposition line: {line!r}"
        assert any(
            line.startswith(
                'repro_refined_pruned_nodes_total{rule="sequenceable"}'
            )
            for line in lines
        )
        assert any(
            line.startswith('repro_span_seconds{span="analyze"}')
            for line in lines
        )

    def test_counters_accumulate_across_runs(self, handshake):
        with obs.observed() as session:
            repro.analyze(handshake)
            one = session.registry.counter_value("analyze.runs")
            repro.analyze(handshake)
            two = session.registry.counter_value("analyze.runs")
        assert (one, two) == (1, 2)


# ---------------------------------------------------------------------------
# thread safety (instruments are shared across daemon worker threads)


class TestRegistryThreadSafety:
    def test_concurrent_increments_are_exact(self):
        import threading

        reg = MetricsRegistry()
        counter = reg.counter("hits")
        gauge = reg.gauge("depth")
        hist = reg.histogram("sizes")
        workers, per = 8, 2000
        barrier = threading.Barrier(workers)

        def hammer():
            barrier.wait()
            for _ in range(per):
                counter.inc()
                gauge.set(1.0)
                hist.observe(2.0)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Unguarded ``self.value += amount`` drops updates under the
        # worker pool; totals must be exact, not approximate.
        assert reg.counter_value("hits") == workers * per
        assert hist.count == workers * per
        assert hist.sum == pytest.approx(2.0 * workers * per)
        assert hist.min == hist.max == 2.0

    def test_get_or_create_race_yields_one_instrument(self):
        import threading

        reg = MetricsRegistry()
        workers = 8
        barrier = threading.Barrier(workers)
        found = []
        lock = threading.Lock()

        def create():
            barrier.wait()
            c = reg.counter("shared", kind="x")
            c.inc()
            with lock:
                found.append(c)

        threads = [threading.Thread(target=create) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is found[0] for c in found)
        assert reg.counter_value("shared", kind="x") == workers

"""Differential and regression tests for the indexed wave engine (PR 5).

The ``backend="index"`` wave kernels (:class:`repro.waves.engine.WaveIndex`)
must be observationally indistinguishable from the ``backend="reference"``
tuple-of-nodes oracles: same ``visited_count``, ``can_terminate``,
anomaly classifications *in the same order*, witness schedules, and
budget behavior.  Hypothesis drives both backends over random programs;
the bundled paper corpus pins the real workloads.

Also covers the bugfix satellites that ride along:

* the state budget is enforced during seeding (the initial cross
  product used to bypass ``state_limit`` entirely);
* budget exhaustion no longer discards partial findings —
  ``confirm_deadlock_report`` upgrades to CONFIRMED when a deadlock
  wave was in hand, and ``ExplorationLimitError`` carries the partial
  :class:`ExplorationResult`;
* ``Wave.position_of`` raises a typed :class:`UnknownTaskError`;
* ``next_waves_with_events`` yields each ``(event, wave)`` at most once
  even when a hand-built graph registers duplicate successors.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.analysis.confirm import (
    ConfirmationOutcome,
    confirm_deadlock_report,
)
from repro.analysis.refined import refined_deadlock_analysis
from repro.errors import ExplorationLimitError, UnknownTaskError
from repro.lang.ast_nodes import Signal
from repro.lang.parser import parse_program
from repro.syncgraph.model import SyncGraph
from repro.waves.engine import BACKENDS, WaveIndex
from repro.waves.explore import ExplorationResult, explore
from repro.waves.wave import (
    Wave,
    initial_waves,
    iter_initial_waves,
    next_waves_with_events,
)
from repro.waves.witness import find_anomaly_witness
from repro.workloads.patterns import dining_philosophers
from tests.conftest import graph_of
from tests.test_properties import FAST, small_programs


def _classification_fingerprint(classification):
    return (
        classification.wave,
        classification.stalls,
        classification.deadlocks,
    )


def _explore_fingerprint(result):
    return (
        result.visited_count,
        result.can_terminate,
        result.limited,
        [_classification_fingerprint(c) for c in result.anomalous],
    )


def _both_backends(graph, **kwargs):
    return (
        explore(graph, backend="index", **kwargs),
        explore(graph, backend="reference", **kwargs),
    )


# --------------------------------------------------------------------------
# differential equivalence: index engine vs reference oracle
# --------------------------------------------------------------------------


class TestDifferentialEquivalence:
    @FAST
    @given(small_programs())
    def test_explore_parity(self, program):
        graph = graph_of(program)
        indexed, reference = _both_backends(graph, state_limit=60_000)
        assert _explore_fingerprint(indexed) == _explore_fingerprint(
            reference
        )

    @FAST
    @given(small_programs())
    def test_explore_parity_under_tight_budget(self, program):
        # The budget-faithful paths must also agree: same limited flag,
        # same visited_count, same partial anomaly list.
        graph = graph_of(program)
        indexed, reference = _both_backends(
            graph, state_limit=7, on_limit="partial"
        )
        assert _explore_fingerprint(indexed) == _explore_fingerprint(
            reference
        )

    @FAST
    @given(small_programs())
    def test_witness_parity(self, program):
        graph = graph_of(program)
        witnesses = {}
        for backend in BACKENDS:
            try:
                witnesses[backend] = find_anomaly_witness(
                    graph, kind="any", state_limit=60_000, backend=backend
                )
            except ExplorationLimitError:
                witnesses[backend] = "limited"
        index_w, ref_w = witnesses["index"], witnesses["reference"]
        if index_w is None or index_w == "limited":
            assert ref_w == index_w
            return
        assert ref_w is not None and ref_w != "limited"
        assert index_w.initial == ref_w.initial
        assert index_w.schedule == ref_w.schedule
        assert index_w.waves == ref_w.waves
        assert _classification_fingerprint(
            index_w.classification
        ) == _classification_fingerprint(ref_w.classification)

    def test_corpus_parity(self, corpus):
        for name, entry in corpus.items():
            graph = graph_of(entry.program)
            indexed, reference = _both_backends(graph, state_limit=60_000)
            assert _explore_fingerprint(indexed) == _explore_fingerprint(
                reference
            ), f"explore parity broke on corpus program {name!r}"

    def test_corpus_witness_parity(self, corpus):
        for name, entry in corpus.items():
            graph = graph_of(entry.program)
            per_backend = {}
            for backend in BACKENDS:
                per_backend[backend] = find_anomaly_witness(
                    graph, kind="any", state_limit=60_000, backend=backend
                )
            index_w = per_backend["index"]
            ref_w = per_backend["reference"]
            if index_w is None:
                assert ref_w is None, name
                continue
            assert ref_w is not None, name
            assert index_w.schedule == ref_w.schedule, name
            assert index_w.waves == ref_w.waves, name

    def test_prebuilt_engine_is_reusable(self):
        graph = graph_of(dining_philosophers(4, True))
        engine = WaveIndex(graph)
        first = explore(graph, backend="index", engine=engine)
        second = explore(graph, backend="index", engine=engine)
        assert _explore_fingerprint(first) == _explore_fingerprint(second)
        assert find_anomaly_witness(
            graph, kind="deadlock", backend="index", engine=engine
        ) is not None

    def test_unpack_roundtrip(self):
        graph = graph_of(dining_philosophers(3, True))
        engine = WaveIndex(graph)
        for key, _occ in engine._seed():
            assert engine.unpack(key) in initial_waves(graph)

    def test_unknown_backend_rejected(self, handshake):
        graph = graph_of(handshake)
        with pytest.raises(ValueError, match="unknown backend"):
            explore(graph, backend="turbo")
        with pytest.raises(ValueError, match="unknown backend"):
            find_anomaly_witness(graph, backend="turbo")

    def test_unknown_on_limit_mode_rejected(self, handshake):
        graph = graph_of(handshake)
        with pytest.raises(ValueError, match="unknown on_limit"):
            explore(graph, on_limit="ignore")


# --------------------------------------------------------------------------
# satellite: budget enforced during seeding
# --------------------------------------------------------------------------

# Three entry branches => 2**3 = 8 initial waves before any expansion.
WIDE_SEED_SRC = """
program wide;
task a is begin if ? then send b.m0; else send b.m1; end if; end;
task b is begin if ? then accept m0; else accept m1; end if; end;
task c is begin if ? then send b.m0; else send b.m1; end if; end;
"""


class TestSeedingBudget:
    @pytest.fixture
    def wide_graph(self):
        return graph_of(parse_program(WIDE_SEED_SRC))

    def test_initial_cross_product_is_wide(self, wide_graph):
        assert len(initial_waves(wide_graph)) == 8

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeding_respects_state_limit(self, wide_graph, backend):
        # Regression: seeding used to materialize the whole initial
        # cross product regardless of state_limit.
        result = explore(
            wide_graph, state_limit=4, backend=backend, on_limit="partial"
        )
        assert result.limited
        assert result.visited_count == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_witness_seeding_respects_state_limit(self, wide_graph, backend):
        with pytest.raises(ExplorationLimitError):
            find_anomaly_witness(
                wide_graph, kind="deadlock", state_limit=4, backend=backend
            )


# --------------------------------------------------------------------------
# satellite: partial results survive budget exhaustion
# --------------------------------------------------------------------------


class TestBudgetFaithfulness:
    @pytest.fixture
    def dining_graph(self):
        return graph_of(dining_philosophers(4, True))

    def test_limit_error_carries_partial_result(self, dining_graph):
        with pytest.raises(ExplorationLimitError) as excinfo:
            explore(dining_graph, state_limit=50)
        partial = excinfo.value.result
        assert isinstance(partial, ExplorationResult)
        assert partial.limited
        assert not partial.exhaustive
        assert partial.visited_count == 50
        assert partial.state_limit == 50

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_on_limit_partial_returns_result(self, dining_graph, backend):
        result = explore(
            dining_graph, state_limit=50, backend=backend,
            on_limit="partial",
        )
        assert result.limited
        assert result.visited_count == 50

    def test_exhaustive_run_is_marked_exhaustive(self, dining_graph):
        result = explore(dining_graph, state_limit=60_000)
        assert result.exhaustive
        assert not result.limited
        assert result.has_deadlock

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_witness_found_within_budget_is_returned(
        self, dining_graph, backend
    ):
        # The full space has 321 waves; a budget of 50 is exhausted, but
        # a deadlock wave is discovered first — the witness must be
        # returned, not thrown away with an ExplorationLimitError.
        witness = find_anomaly_witness(
            dining_graph, kind="deadlock", state_limit=50, backend=backend
        )
        assert witness is not None
        assert witness.is_deadlock

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_confirm_upgrades_to_confirmed_despite_budget(
        self, dining_graph, backend
    ):
        # Regression: confirm_deadlock_report used to answer
        # INCONCLUSIVE whenever the budget ran out, even with a deadlock
        # wave already in hand.
        report = refined_deadlock_analysis(dining_graph)
        assert not report.deadlock_free
        confirmed = confirm_deadlock_report(
            dining_graph, report, state_limit=50, backend=backend
        )
        assert confirmed.outcome == ConfirmationOutcome.CONFIRMED
        assert confirmed.witness is not None
        assert confirmed.witness.is_deadlock

    def test_confirm_still_inconclusive_without_findings(self, dining_graph):
        # A budget exhausted before any deadlock wave turns up has
        # nothing to upgrade: INCONCLUSIVE remains the honest answer.
        report = refined_deadlock_analysis(dining_graph)
        assert not report.deadlock_free
        confirmed = confirm_deadlock_report(
            dining_graph, report, state_limit=5
        )
        assert confirmed.outcome == ConfirmationOutcome.INCONCLUSIVE
        assert confirmed.witness is None


# --------------------------------------------------------------------------
# satellite: typed position_of error + duplicate-successor dedup
# --------------------------------------------------------------------------


class TestWaveFixes:
    def test_position_of_unknown_task_raises_typed_error(self, handshake):
        graph = graph_of(handshake)
        wave = initial_waves(graph)[0]
        with pytest.raises(UnknownTaskError) as excinfo:
            wave.position_of(graph, "nope")
        assert excinfo.value.task == "nope"
        assert excinfo.value.known == graph.tasks
        assert "t1" in str(excinfo.value)

    def test_position_of_known_task(self, handshake):
        graph = graph_of(handshake)
        wave = initial_waves(graph)[0]
        for i, task in enumerate(graph.tasks):
            assert wave.position_of(graph, task) is wave.positions[i]

    @staticmethod
    def _graph_with_duplicate_successors():
        # Normal construction dedups control edges; build by hand and
        # inject the duplicate directly, as a corrupted/hand-built
        # graph could.
        graph = SyncGraph(["a", "b"])
        sig = Signal("b", "m")
        send = graph.add_rendezvous("send", "a", sig)
        acc = graph.add_rendezvous("accept", "b", sig)
        graph.add_control_edge(graph.b, send)
        graph.add_control_edge(graph.b, acc)
        graph.add_control_edge(send, graph.e)
        graph.add_control_edge(acc, graph.e)
        graph.connect_sync_edges()
        graph._control_succ[send].append(graph.e)  # the duplicate
        return graph, send, acc

    def test_next_waves_dedups_duplicate_successors(self):
        graph, send, acc = self._graph_with_duplicate_successors()
        wave = Wave((send, acc))
        successors = list(next_waves_with_events(graph, wave))
        assert len(successors) == len(set(successors)) == 1

    def test_engine_dedups_duplicate_successors(self):
        graph, send, acc = self._graph_with_duplicate_successors()
        engine = WaveIndex(graph)
        slot = engine.slot_base[0] + list(
            engine.node_of_slot
        ).index(send)
        assert len(engine.succ_deltas[slot]) == 1
        indexed, _, _, _, _ = engine.explore(60_000)
        assert indexed == 2  # <send, accept> and <e, e>

    def test_iter_initial_waves_matches_initial_waves(self, crossed):
        graph = graph_of(crossed)
        assert list(iter_initial_waves(graph)) == initial_waves(graph)

"""Structured report serialization."""

import json

import pytest

import repro
from repro.analysis.confirm import confirm_deadlock_report
from repro.analysis.refined import refined_deadlock_analysis
from repro.interp.runtime import sample_runs
from repro.reporting import (
    SCHEMA_VERSION,
    analysis_result_to_dict,
    confirmation_to_dict,
    deadlock_report_to_dict,
    simulation_to_dict,
    stall_report_to_dict,
    validation_to_dict,
    witness_to_dict,
)
from repro.syncgraph.build import build_sync_graph
from repro.waves.witness import find_anomaly_witness


def roundtrip(payload):
    """Everything must survive JSON encode/decode unchanged."""
    return json.loads(json.dumps(payload))


class TestDeadlockReport:
    def test_certified_payload(self, handshake):
        result = repro.analyze(handshake)
        payload = roundtrip(deadlock_report_to_dict(result.deadlock))
        assert payload["deadlock_free"] is True
        assert payload["verdict"] == "certified-deadlock-free"
        assert payload["evidence"] == []

    def test_evidence_payload(self, crossed):
        result = repro.analyze(crossed)
        payload = roundtrip(deadlock_report_to_dict(result.deadlock))
        assert payload["deadlock_free"] is False
        ev = payload["evidence"][0]
        assert set(ev) == {"head", "tail", "tasks", "component"}
        assert ev["tasks"] == ["t1", "t2"]


class TestStallAndValidation:
    def test_stall_payload(self, stall_program):
        result = repro.analyze(stall_program)
        payload = roundtrip(stall_report_to_dict(result.stall))
        assert payload["stall_free"] is False
        assert payload["imbalanced"]["(t2, m)"] == {
            "sends": 1,
            "accepts": 0,
        }

    def test_validation_payload(self, stall_program):
        result = repro.analyze(stall_program)
        payload = roundtrip(validation_to_dict(result.validation))
        assert payload["fully_matched"] is False
        assert payload["unmatched_sends"] == ["(t2, m)"]


class TestWitnessAndConfirmation:
    def test_witness_payload(self, crossed):
        graph = build_sync_graph(crossed)
        witness = find_anomaly_witness(graph, "deadlock")
        payload = roundtrip(witness_to_dict(witness))
        assert payload["kind"] == "deadlock"
        assert payload["steps"] == 0
        assert len(payload["deadlock_sets"]) == 1

    def test_confirmation_payload(self, crossed):
        graph = build_sync_graph(crossed)
        report = refined_deadlock_analysis(graph)
        confirmed = confirm_deadlock_report(graph, report)
        payload = roundtrip(confirmation_to_dict(confirmed))
        assert payload["outcome"] == "confirmed-deadlock"
        assert payload["witness"]["kind"] == "deadlock"

    def test_no_witness_serializes_null(self, handshake):
        graph = build_sync_graph(handshake)
        report = refined_deadlock_analysis(graph)
        confirmed = confirm_deadlock_report(graph, report)
        payload = roundtrip(confirmation_to_dict(confirmed))
        assert payload["witness"] is None


class TestFullPayload:
    def test_schema_and_sections(self, handshake):
        result = repro.analyze(handshake)
        simulation = sample_runs(result.program, runs=5)
        payload = roundtrip(analysis_result_to_dict(result, simulation))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["sync_graph"]["tasks"] == 2
        assert payload["simulation"]["completed"] == 5
        assert "confirmation" not in payload

    def test_procedures_listed(self):
        result = repro.analyze(
            "program p; procedure q is begin null; end;"
            "task a is begin call q; send b.m; end;"
            "task b is begin accept m; end;"
        )
        payload = roundtrip(analysis_result_to_dict(result))
        assert payload["procedures"] == ["q"]

"""Source transforms: unroll (Lemma 1), linearize, merge, co-dependent."""

import pytest

from repro.lang.ast_nodes import Accept, If, Send, Signal, While
from repro.lang.parser import parse_program
from repro.lang.validate import collect_signals
from repro.syncgraph.build import build_sync_graph
from repro.transforms.branch_merge import merge_branch_rendezvous
from repro.transforms.codependent import (
    factor_codependent,
    find_codependent_pairs,
)
from repro.transforms.linearize import (
    count_linearizations,
    linearizations,
)
from repro.transforms.unroll import has_loops, remove_loops, unroll_body
from repro.waves.explore import exact_deadlock, explore


class TestUnroll:
    def test_loop_free_unchanged(self, handshake):
        program, changed = remove_loops(handshake)
        assert not changed
        assert program is handshake

    def test_while_becomes_two_guarded_copies(self):
        p = parse_program(
            "program p; task a is begin while ? loop send b.m; end loop; "
            "end; task b is begin accept m; accept m; end;"
        )
        t, changed = remove_loops(p)
        assert changed
        (outer,) = t.task("a").body
        assert isinstance(outer, If)
        first, inner = outer.then_body
        assert isinstance(first, Send)
        assert isinstance(inner, If)
        assert inner.then_body == (Send(task="b", message="m"),)

    def test_unrolled_program_is_loop_free(self):
        p = parse_program(
            "program p; task a is begin while ? loop while ? loop "
            "send b.m; end loop; end loop; end;"
            "task b is begin accept m; end;"
        )
        t, _ = remove_loops(p)
        assert not has_loops(t)
        assert not build_sync_graph(t).has_control_cycle()

    def test_for_fully_unrolled_when_small(self):
        p = parse_program(
            "program p; task a is begin for i in 1 .. 3 loop send b.m; "
            "end loop; end; task b is begin accept m; accept m; accept m; "
            "end;"
        )
        t, _ = remove_loops(p)
        body = t.task("a").body
        assert body == (Send(task="b", message="m"),) * 3

    def test_for_beyond_limit_becomes_guarded(self):
        p = parse_program(
            "program p; task a is begin for i in 1 .. 100 loop send b.m; "
            "end loop; end; task b is begin accept m; end;"
        )
        t, _ = remove_loops(p, for_limit=10)
        (outer,) = t.task("a").body
        assert isinstance(outer, If)

    def test_factor_parameter(self):
        p = parse_program(
            "program p; task a is begin while ? loop send b.m; end loop; "
            "end; task b is begin accept m; end;"
        )
        t3, _ = remove_loops(p, factor=3)
        sends = [
            s
            for s in collect_signals(t3).items()
        ]
        assert collect_signals(t3)[Signal("b", "m")][0] == 3

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            unroll_body((), factor=0)

    def test_lemma1_preserves_deadlock(self):
        # a deadlock reachable only on the second loop iteration
        p = parse_program(
            "program p;"
            "task a is begin while ? loop send b.m; accept r; end loop; "
            "send b.bad; accept bad2; end;"
            "task b is begin while ? loop accept m; send a.r; end loop; "
            "send a.bad2; accept bad; end;"
        )
        t, _ = remove_loops(p)
        assert exact_deadlock(build_sync_graph(t))


class TestLinearize:
    def test_straight_line_single_linearization(self, handshake):
        assert count_linearizations(handshake) == 1
        (only,) = linearizations(handshake)
        assert only.task("t1").body == handshake.task("t1").body

    def test_branch_doubles_count(self):
        p = parse_program(
            "program p; task a is begin if ? then null; else null; end if; "
            "end; task b is begin null; end;"
        )
        assert count_linearizations(p) == 2

    def test_loop_iteration_choices(self):
        p = parse_program(
            "program p; task a is begin while ? loop null; end loop; end;"
            "task b is begin null; end;"
        )
        # 0, 1 or 2 iterations
        assert count_linearizations(p, max_loop_iters=2) == 3

    def test_linearizations_are_branch_free(self):
        p = parse_program(
            "program p; task a is begin if ? then send b.m; end if; "
            "while ? loop null; end loop; end;"
            "task b is begin accept m; end;"
        )
        for lin in linearizations(p):
            for task in lin.tasks:
                assert not any(
                    isinstance(s, (If, While)) for s in task.body
                )

    def test_limit_respected(self):
        p = parse_program(
            "program p; task a is begin if ? then null; end if; "
            "if ? then null; end if; if ? then null; end if; end;"
            "task b is begin null; end;"
        )
        assert len(list(linearizations(p, limit=3))) == 3


class TestBranchMerge:
    def test_identical_rendezvous_hoisted(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; else send b.m; end if; end;"
            "task b is begin accept m; end;"
        )
        merged, count = merge_branch_rendezvous(p)
        assert count == 1
        (stmt,) = merged.task("a").body
        assert stmt == Send(task="b", message="m")

    def test_split_preserves_order(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then accept go; send b.m; "
            "else send b.m; end if; end;"
            "task b is begin accept m; end;"
            "task c is begin send a.go; end;"
        )
        merged, count = merge_branch_rendezvous(p)
        assert count == 1
        body = merged.task("a").body
        assert isinstance(body[0], If)  # residual conditional: accept go
        assert body[1] == Send(task="b", message="m")

    def test_different_signals_not_merged(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; else send b.n; end if; end;"
            "task b is begin accept m; accept n; end;"
        )
        merged, count = merge_branch_rendezvous(p)
        assert count == 0
        assert merged is p

    def test_repeated_merges_reach_fixpoint(self):
        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; send b.n; "
            "else send b.m; send b.n; end if; end;"
            "task b is begin accept m; accept n; end;"
        )
        merged, count = merge_branch_rendezvous(p)
        assert count == 2
        assert merged.task("a").body == (
            Send(task="b", message="m"),
            Send(task="b", message="n"),
        )

    def test_merge_is_anomaly_preserving(self):
        # merging may only ADD paths: a deadlock-free original stays a
        # subset of the merged behaviours; exact verdicts must not go
        # from anomalous to clean
        p = parse_program(
            "program p;"
            "task a is begin if ? then send b.m; else send b.m; end if; end;"
            "task b is begin if ? then accept m; end if; end;"
        )
        merged, _ = merge_branch_rendezvous(p)
        before = explore(build_sync_graph(p))
        after = explore(build_sync_graph(merged))
        assert before.has_anomaly <= after.has_anomaly


class TestCodependent:
    def test_fig5d_pair_detected(self, corpus):
        pairs = find_codependent_pairs(corpus["fig5d"].program)
        assert len(pairs) == 1
        pair = pairs[0]
        assert pair.sender_task == "t"
        assert pair.accepter_task == "tp"
        assert pair.signal == Signal("tp", "r")

    def test_factoring_hoists_both_sides(self, corpus):
        factored, pairs = factor_codependent(corpus["fig5d"].program)
        assert pairs
        for task in factored.tasks:
            for stmt in task.body:
                if isinstance(stmt, If):
                    assert not any(
                        isinstance(s, (Send, Accept))
                        for s in stmt.then_body
                    )

    def test_no_pair_without_communication(self):
        p = parse_program(
            "program p;"
            "task t is begin v := ?; if v then send u.r; end if; end;"
            "task u is begin w := ?; if w then accept r; end if; end;"
        )
        assert find_codependent_pairs(p) == []

    def test_no_pair_when_signal_ambiguous(self):
        p = parse_program(
            "program p;"
            "task t is begin v := ?; send u.s; if v then send u.r; "
            "end if; send u.r; end;"
            "task u is begin accept s (v); if v then accept r; end if; "
            "accept r; end;"
        )
        assert find_codependent_pairs(p) == []

    def test_factoring_identity_without_pairs(self, handshake):
        factored, pairs = factor_codependent(handshake)
        assert factored is handshake
        assert pairs == []

"""Control-flow graph construction and structural analyses."""

import pytest

from repro.cfg.build import build_cfgs, build_task_cfg
from repro.cfg.dominators import (
    dominates,
    dominator_sets,
    postdominator_sets,
)
from repro.cfg.graph import NodeKind
from repro.cfg.loops import ast_loop_depth, loop_nest_depth, natural_loops
from repro.cfg.reducibility import back_edges, ensure_reducible, is_reducible
from repro.lang.parser import parse_program


def cfg_for(body_src: str):
    p = parse_program(f"program p; task t is begin {body_src} end; "
                      "task other is begin end;")
    return build_task_cfg(p.task("t"))


class TestConstruction:
    def test_straight_line_shape(self):
        cfg = cfg_for("send other.a; accept b;")
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count(NodeKind.SEND) == 1
        assert kinds.count(NodeKind.ACCEPT) == 1
        send = next(n for n in cfg.nodes if n.kind == NodeKind.SEND)
        accept = next(n for n in cfg.nodes if n.kind == NodeKind.ACCEPT)
        assert cfg.successors(cfg.entry) == (send,)
        assert cfg.successors(send) == (accept,)
        assert cfg.successors(accept) == (cfg.exit,)

    def test_if_creates_branch_and_join(self):
        cfg = cfg_for("if ? then send other.a; else null; end if;")
        branch = next(n for n in cfg.nodes if n.kind == NodeKind.BRANCH)
        join = next(n for n in cfg.nodes if n.kind == NodeKind.JOIN)
        assert len(cfg.successors(branch)) == 2
        assert len(cfg.predecessors(join)) == 2

    def test_empty_else_connects_branch_to_join(self):
        cfg = cfg_for("if ? then send other.a; end if;")
        branch = next(n for n in cfg.nodes if n.kind == NodeKind.BRANCH)
        join = next(n for n in cfg.nodes if n.kind == NodeKind.JOIN)
        assert join in cfg.successors(branch)

    def test_while_creates_back_edge(self):
        cfg = cfg_for("while ? loop send other.a; end loop;")
        assert len(back_edges(cfg)) == 1

    def test_every_node_on_entry_exit_path(self):
        cfg = cfg_for(
            "if ? then while ? loop accept x; end loop; else null; end if;"
        )
        cfg.check_connected()  # raises on violation

    def test_build_cfgs_covers_all_tasks(self, handshake):
        cfgs = build_cfgs(handshake)
        assert set(cfgs) == {"t1", "t2"}

    def test_rendezvous_nodes_carry_statements(self):
        cfg = cfg_for("send other.a;")
        (node,) = cfg.rendezvous_nodes
        assert node.stmt is not None
        assert node.is_rendezvous


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_for("send other.a; accept b;")
        doms = dominator_sets(cfg)
        assert all(cfg.entry in doms[n] for n in cfg.nodes)

    def test_linear_chain_domination(self):
        cfg = cfg_for("send other.a; accept b;")
        send = next(n for n in cfg.nodes if n.kind == NodeKind.SEND)
        accept = next(n for n in cfg.nodes if n.kind == NodeKind.ACCEPT)
        assert dominates(cfg, send, accept)
        assert not dominates(cfg, accept, send)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = cfg_for("if ? then send other.a; else accept b; end if;")
        send = next(n for n in cfg.nodes if n.kind == NodeKind.SEND)
        join = next(n for n in cfg.nodes if n.kind == NodeKind.JOIN)
        assert not dominates(cfg, send, join)

    def test_postdominators(self):
        cfg = cfg_for("send other.a; accept b;")
        send = next(n for n in cfg.nodes if n.kind == NodeKind.SEND)
        accept = next(n for n in cfg.nodes if n.kind == NodeKind.ACCEPT)
        pdoms = postdominator_sets(cfg)
        assert accept in pdoms[send]
        assert cfg.exit in pdoms[send]


class TestReducibility:
    def test_structured_programs_are_reducible(self):
        cfg = cfg_for(
            "while ? loop if ? then accept a; end if; end loop; send other.z;"
        )
        assert is_reducible(cfg)
        ensure_reducible(cfg)

    def test_loop_free_has_no_back_edges(self):
        cfg = cfg_for("if ? then null; end if;")
        assert back_edges(cfg) == []


class TestLoops:
    def test_natural_loop_body(self):
        cfg = cfg_for("while ? loop accept a; end loop;")
        (loop,) = natural_loops(cfg)
        accept = next(n for n in cfg.nodes if n.kind == NodeKind.ACCEPT)
        assert accept in loop
        assert loop.header.kind == NodeKind.BRANCH

    def test_nest_depth(self):
        cfg = cfg_for(
            "while ? loop while ? loop accept a; end loop; end loop;"
        )
        assert loop_nest_depth(cfg) == 2

    def test_ast_loop_depth(self):
        p = parse_program(
            "program p; task t is begin "
            "if ? then for i in 1 .. 2 loop while ? loop null; "
            "end loop; end loop; end if; end;"
        )
        assert ast_loop_depth(p.task("t").body) == 2

"""Tests for the analysis daemon (``repro.server``).

Four layers:

* protocol framing and error codes (pure functions);
* :class:`Document` / :class:`Session` semantics — incremental
  invalidation, the resident LRU, the disk store, URI threading;
* CLI parity — the daemon's report payloads re-rendered with
  :func:`repro.reporting.render_json` must match the one-shot CLI's
  stdout byte for byte;
* golden JSONL transcripts driven through a full
  :class:`AnalysisServer`, plus a subprocess smoke test over real
  stdio.

Regenerate the golden transcripts after an intentional payload change
with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_server.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.farm.cache import ResultCache
from repro.reporting import render_json
from repro.server import AnalysisServer, Session
from repro.server.daemon import DEFAULT_QUEUE_SIZE
from repro.server.httpd import parse_hostport
from repro.server.protocol import (
    ANALYSIS_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    REQUEST_TIMEOUT,
    ProtocolError,
    decode_request,
    dumps,
    error_response,
    response,
)
from repro.server.session import Document

GOLDEN_DIR = Path(__file__).parent / "golden_server"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))

CROSSED_SRC = """\
program crossed;
task t1 is begin send t2.a; accept x; end;
task t2 is begin send t1.x; accept a; end;
"""

HANDSHAKE_SRC = """\
program handshake;
task t1 is begin send t2.sig1; accept sig2; end;
task t2 is begin accept sig1; send t1.sig2; end;
"""

# Same canonical program as CROSSED_SRC: comments and layout only.
CROSSED_COMMENTED = """\
-- a leading comment
program crossed;

task t1 is begin send t2.a; accept x; end;
task t2 is begin send t1.x; accept a; end;  -- trailing note
"""

# Keys whose values depend on the machine or the clock, never on the
# analysis: replaced before golden comparison.
VOLATILE_KEYS = {"wall_time_s", "uptime_s", "pid", "duration_s"}


def normalize(obj):
    if isinstance(obj, dict):
        return {
            k: ("<volatile>" if k in VOLATILE_KEYS else normalize(v))
            for k, v in obj.items()
        }
    if isinstance(obj, list):
        return [normalize(v) for v in obj]
    return obj


def make_server(store=None, **kwargs) -> AnalysisServer:
    return AnalysisServer(session=Session(store=store), **kwargs)


def rpc(server, method, params=None, id=1):
    line = json.dumps(
        {"id": id, "method": method, "params": params or {}}
    )
    return server.handle_line(line)


# ---------------------------------------------------------------------------
# protocol


class TestProtocol:
    def test_decode_roundtrip(self):
        req = decode_request(
            '{"id": 7, "method": "analyze", "params": {"uri": "a"}}'
        )
        assert req.id == 7
        assert req.method == "analyze"
        assert req.params == {"uri": "a"}

    def test_decode_defaults(self):
        req = decode_request('{"method": "ping"}')
        assert req.id is None
        assert req.params == {}

    @pytest.mark.parametrize(
        "line, code",
        [
            ("{not json", PARSE_ERROR),
            ('"just a string"', INVALID_REQUEST),
            ("[1, 2]", INVALID_REQUEST),
            ('{"params": {}}', INVALID_REQUEST),
            ('{"method": 42}', INVALID_REQUEST),
            ('{"method": "x", "params": []}', INVALID_PARAMS),
        ],
    )
    def test_decode_errors(self, line, code):
        with pytest.raises(ProtocolError) as exc:
            decode_request(line)
        assert exc.value.code == code

    def test_framing_is_one_line(self):
        framed = dumps(response(1, {"nested": {"deep": [1, 2]}}))
        assert "\n" not in framed
        assert json.loads(framed) == {
            "id": 1,
            "result": {"nested": {"deep": [1, 2]}},
        }

    def test_error_response_shape(self):
        err = error_response(3, ANALYSIS_ERROR, "boom", data={"k": 1})
        assert err == {
            "id": 3,
            "error": {"code": 1000, "message": "boom", "data": {"k": 1}},
        }


# ---------------------------------------------------------------------------
# Document invalidation


class TestDocumentInvalidation:
    def test_identical_text_is_none(self):
        doc = Document("mem:a", CROSSED_SRC)
        doc.prepared()
        kind, reason = doc.apply_change(CROSSED_SRC)
        assert (kind, reason) == ("none", "identical-text")
        assert doc.artifacts()["prepared"]

    def test_comment_only_edit_keeps_pipeline(self):
        doc = Document("mem:a", CROSSED_SRC)
        prepared = doc.prepared()
        index = doc.index()
        engine = doc.engine()
        kind, reason = doc.apply_change(CROSSED_COMMENTED)
        assert kind == "partial"
        assert reason == "whitespace-or-comments"
        # The expensive layers are the *same objects*, not rebuilds.
        assert doc.prepared() is prepared
        assert doc.index() is index
        assert doc.engine() is engine
        # The parse tracks the new text (spans shifted by the comment).
        assert doc.program().tasks[0].loc.line > 1

    def test_task_body_edit_rebuilds(self):
        doc = Document("mem:a", CROSSED_SRC)
        prepared = doc.prepared()
        fixed = CROSSED_SRC.replace(
            "send t2.a; accept x;", "accept x; send t2.a;"
        )
        kind, reason = doc.apply_change(fixed)
        assert (kind, reason) == ("full", "semantic-edit")
        assert not doc.artifacts()["prepared"]
        assert doc.prepared() is not prepared
        assert doc.rebuilds == 1

    def test_parse_error_is_full(self):
        doc = Document("mem:a", CROSSED_SRC)
        doc.prepared()
        kind, reason = doc.apply_change("task broken")
        assert (kind, reason) == ("full", "parse-error")
        assert not doc.artifacts()["prepared"]

    def test_out_of_task_edit_reason(self):
        base = CROSSED_SRC + "-- trailing banner\n"
        doc = Document("mem:a", base)
        doc.prepared()
        edited = CROSSED_SRC + "-- trailing banner, reworded\n"
        last_line = len(base.splitlines())
        kind, reason = doc.apply_change(
            edited,
            ranges=[{"start_line": last_line, "start_column": 4}],
        )
        assert kind == "partial"
        assert reason == "edit-outside-declarations"

    def test_edit_inside_task_span_not_classified_outside(self):
        doc = Document("mem:a", CROSSED_SRC)
        doc.prepared()
        # Range hits task t1's declaration; canonical still unchanged,
        # so it is partial — but not labelled out-of-declaration.
        kind, reason = doc.apply_change(
            CROSSED_COMMENTED,
            ranges=[{"start_line": 2, "start_column": 1}],
        )
        assert kind == "partial"
        assert reason == "whitespace-or-comments"


# ---------------------------------------------------------------------------
# Session


class TestSession:
    def test_analyze_cache_progression(self):
        session = Session(store=None)
        payload1, cache1 = session.analyze_document(
            uri="mem:a", text=CROSSED_SRC
        )
        payload2, cache2 = session.analyze_document(uri="mem:a")
        assert (cache1, cache2) == ("computed", "memory")
        assert payload1 == payload2
        assert payload1["deadlock"]["verdict"] == "possible-deadlock"
        assert session.counters["cache_hits"] == 1
        assert session.counters["computed"] == 1

    def test_comment_edit_preserves_result_cache(self):
        session = Session(store=None)
        session.analyze_document(uri="mem:a", text=CROSSED_SRC)
        info = session.change_document("mem:a", CROSSED_COMMENTED)
        assert info["invalidation"] == "partial"
        _, cache = session.analyze_document(uri="mem:a")
        # Content-addressed key hashes the canonical form, so the
        # resident result survives a formatting-only edit.
        assert cache == "memory"
        assert session.counters["invalidations_partial"] == 1

    def test_semantic_edit_recomputes(self):
        session = Session(store=None)
        session.analyze_document(uri="mem:a", text=CROSSED_SRC)
        info = session.change_document("mem:a", HANDSHAKE_SRC)
        assert info["invalidation"] == "full"
        payload, cache = session.analyze_document(uri="mem:a")
        assert cache == "computed"
        assert payload["deadlock"]["verdict"] == "certified-deadlock-free"

    def test_store_warms_fresh_session(self, tmp_path):
        store = ResultCache(cache_dir=tmp_path)
        first = Session(store=store)
        first.analyze_document(uri="mem:a", text=CROSSED_SRC)

        reborn = Session(store=ResultCache(cache_dir=tmp_path))
        payload, cache = reborn.analyze_document(
            uri="mem:b", text=CROSSED_SRC
        )
        assert cache == "store"
        assert payload["deadlock"]["verdict"] == "possible-deadlock"

    def test_distinct_algorithms_distinct_entries(self):
        session = Session(store=None)
        _, c1 = session.analyze_document(
            uri="mem:a", text=CROSSED_SRC, algorithm="refined"
        )
        _, c2 = session.analyze_document(
            uri="mem:a", algorithm="combined-pairs"
        )
        assert (c1, c2) == ("computed", "computed")

    def test_unknown_algorithm_rejected(self):
        session = Session(store=None)
        with pytest.raises(ValueError, match="unknown algorithm"):
            session.analyze_document(
                uri="mem:a", text=CROSSED_SRC, algorithm="nope"
            )

    def test_unknown_document_rejected(self):
        session = Session(store=None)
        with pytest.raises(ValueError, match="unknown document"):
            session.analyze_document(uri="mem:never-opened")

    def test_file_uri_reads_from_disk(self, tmp_path):
        path = tmp_path / "prog.adl"
        path.write_text(HANDSHAKE_SRC)
        session = Session(store=None)
        payload, cache = session.analyze_document(uri=str(path))
        assert cache == "computed"
        assert payload["program"] == "handshake"

    def test_lint_cache_and_uri(self):
        session = Session(store=None)
        payload, sarif_doc, cache = session.lint_document(
            uri="untitled:scratch-1", text=CROSSED_SRC, sarif=True
        )
        assert cache == "computed"
        assert payload["path"] == "untitled:scratch-1"
        loc = sarif_doc["runs"][0]["results"][0]["locations"][0]
        art = loc["physicalLocation"]["artifactLocation"]["uri"]
        assert art == "untitled:scratch-1"
        _, _, cache2 = session.lint_document(uri="untitled:scratch-1")
        assert cache2 == "memory"
        assert session.counters["lint_cache_hits"] == 1

    def test_analysis_result_records_uri(self):
        session = Session(store=None)
        session.analyze_document(uri="untitled:buf", text=CROSSED_SRC)
        result, _, _ = session._analysis(
            session.documents["untitled:buf"],
            algorithm="refined",
            exact=False,
            state_limit=200_000,
            backend="index",
        )
        assert result.uri == "untitled:buf"

    def test_status_shape(self):
        session = Session(store=None)
        session.analyze_document(uri="mem:a", text=CROSSED_SRC)
        status = session.status()
        assert status["protocol_version"] == 1
        assert status["counters"]["computed"] == 1
        assert status["lru"]["entries"] == 1
        assert status["store"] is None
        doc = status["documents"][0]
        assert doc["uri"] == "mem:a"
        assert doc["artifacts"]["prepared"]

    def test_flush_writes_missing_entries(self, tmp_path):
        store = ResultCache(cache_dir=tmp_path)
        session = Session(store=store)
        session.analyze_document(uri="mem:a", text=CROSSED_SRC)
        # Store writes are write-through, so flush finds nothing new.
        assert session.flush() == 0
        # Wipe the disk copies; flush restores them from the LRU.
        for entry in tmp_path.glob("??/*.pkl"):
            entry.unlink()
        assert session.flush() == 1

    def test_obs_counters_mirror(self):
        with obs.observed() as obs_session:
            session = Session(store=None)
            session.analyze_document(uri="mem:a", text=CROSSED_SRC)
            session.analyze_document(uri="mem:a")
            session.change_document("mem:a", CROSSED_COMMENTED)
        reg = obs_session.registry
        assert reg.counter_value("server.computed") == 1
        assert reg.counter_value("server.cache_hits") == 1
        assert reg.counter_value("server.invalidations.partial") == 1


# ---------------------------------------------------------------------------
# CLI parity


def cli_stdout(argv, capsys):
    from repro.cli import main

    code = main(argv)
    return capsys.readouterr().out, code


class TestCliParity:
    def test_analyze_payload_matches_cli(self, tmp_path, capsys):
        path = tmp_path / "crossed.adl"
        path.write_text(CROSSED_SRC)
        out, _ = cli_stdout([str(path), "--json"], capsys)

        server = make_server()
        reply = rpc(
            server, "analyze", {"uri": "mem:a", "text": CROSSED_SRC}
        )
        assert render_json(reply["result"]["report"]) + "\n" == out

    def test_lint_payload_matches_cli(self, tmp_path, capsys):
        path = tmp_path / "crossed.adl"
        path.write_text(CROSSED_SRC)
        out, _ = cli_stdout([str(path), "--lint", "--json"], capsys)

        server = make_server()
        reply = rpc(
            server, "lint", {"uri": str(path), "text": CROSSED_SRC}
        )
        assert render_json(reply["result"]["report"]) + "\n" == out

    def test_repair_payload_matches_cli(self, tmp_path, capsys):
        path = tmp_path / "crossed.adl"
        path.write_text(CROSSED_SRC)
        out, _ = cli_stdout(
            [str(path), "--suggest-fixes", "--json"], capsys
        )

        server = make_server()
        reply = rpc(
            server, "repair", {"uri": "mem:a", "text": CROSSED_SRC}
        )
        report = reply["result"]["report"]
        assert report["repair"]["fixed"]
        cli_payload = json.loads(out)
        norm_cli, norm_srv = normalize(cli_payload), normalize(report)
        assert norm_cli == norm_srv
        # Byte parity modulo the wall-clock field repair runs carry.
        assert render_json(norm_srv) + "\n" == render_json(norm_cli) + "\n"


# ---------------------------------------------------------------------------
# daemon dispatch


class TestDaemonDispatch:
    def test_unknown_method(self):
        reply = rpc(make_server(), "mystery")
        assert reply["error"]["code"] == METHOD_NOT_FOUND

    def test_malformed_line(self):
        reply = make_server().handle_line("{oops")
        assert reply["id"] is None
        assert reply["error"]["code"] == PARSE_ERROR

    def test_analysis_error_code(self):
        reply = rpc(
            make_server(),
            "analyze",
            {"uri": "mem:a", "text": "task broken"},
        )
        assert reply["error"]["code"] == ANALYSIS_ERROR
        assert "ParseError" in reply["error"]["message"]

    def test_invalid_params_code(self):
        reply = rpc(make_server(), "didOpen", {"text": "no uri"})
        assert reply["error"]["code"] == INVALID_PARAMS

    def test_batch_in_memory_items(self):
        reply = rpc(
            make_server(),
            "batch",
            {
                "items": [
                    {"label": "bad", "text": CROSSED_SRC},
                    {"label": "good", "text": HANDSHAKE_SRC},
                ]
            },
        )
        report = reply["result"]["report"]
        assert report["items"] == 2
        verdicts = {
            item["label"]: item["deadlock"]["verdict"]
            for item in report["item_reports"]
        }
        assert verdicts["bad"] == "possible-deadlock"
        assert verdicts["good"] == "certified-deadlock-free"

    def test_shutdown_sets_flag_and_flushes(self):
        server = make_server()
        reply = rpc(server, "shutdown")
        assert reply["result"] == {"ok": True, "flushed": 0}
        assert server.shutting_down.is_set()

    def test_exact_timeout_maps_to_1001(self, monkeypatch):
        # The pool's preemptive kill is timing-dependent (a fast item
        # can finish before its deadline check), so the expiry itself
        # is simulated; what this pins down is the plumbing — exact
        # requests with a budget go through the pool, and a TIMEOUT
        # outcome answers with the protocol's 1001 code.
        from repro.farm.pool import STATUS_TIMEOUT, WorkOutcome
        from repro.server import session as session_mod

        seen = {}

        def fake_run_pool(items, jobs, timeout):
            seen["jobs"], seen["timeout"] = jobs, timeout
            return [
                WorkOutcome(
                    label=items[0].label,
                    status=STATUS_TIMEOUT,
                    error="timed out",
                )
            ]

        monkeypatch.setattr(session_mod, "run_pool", fake_run_pool)
        reply = rpc(
            make_server(),
            "analyze",
            {
                "uri": "mem:a",
                "text": CROSSED_SRC,
                "exact": True,
                "timeout": 0.25,
            },
        )
        assert reply["error"]["code"] == REQUEST_TIMEOUT
        # Preemption needs a real pool: the serial path cannot kill.
        assert seen["jobs"] > 1
        assert seen["timeout"] == 0.25

    def test_exact_with_generous_timeout_completes(self):
        server = make_server()
        reply = rpc(
            server,
            "analyze",
            {
                "uri": "mem:a",
                "text": CROSSED_SRC,
                "exact": True,
                "timeout": 120,
            },
        )
        assert reply["result"]["cache"] == "computed"
        report = reply["result"]["report"]
        assert report["deadlock"]["verdict"] == "possible-deadlock"

    def test_queue_size_default(self):
        assert make_server().scheduler.max_pending == DEFAULT_QUEUE_SIZE

    def test_parse_hostport(self):
        assert parse_hostport("localhost:9000") == ("localhost", 9000)
        assert parse_hostport(":9000") == ("127.0.0.1", 9000)
        assert parse_hostport("0.0.0.0") == ("0.0.0.0", 8171)
        with pytest.raises(ValueError):
            parse_hostport("host:not-a-port")


# ---------------------------------------------------------------------------
# golden transcripts


def transcript_requests():
    crossed = {"uri": "mem:crossed", "text": CROSSED_SRC}
    return {
        "analyze_lifecycle.jsonl": [
            {"id": 1, "method": "ping", "params": {}},
            {
                "id": 2,
                "method": "didOpen",
                "params": {"uri": "mem:crossed", "text": CROSSED_SRC},
            },
            {
                "id": 3,
                "method": "analyze",
                "params": {"uri": "mem:crossed"},
            },
            {
                "id": 4,
                "method": "analyze",
                "params": {"uri": "mem:crossed"},
            },
            {
                "id": 5,
                "method": "didChange",
                "params": {
                    "uri": "mem:crossed",
                    "text": CROSSED_COMMENTED,
                },
            },
            {
                "id": 6,
                "method": "analyze",
                "params": {"uri": "mem:crossed"},
            },
            {
                "id": 7,
                "method": "didClose",
                "params": {"uri": "mem:crossed"},
            },
            {"id": 8, "method": "shutdown", "params": {}},
        ],
        "lint_repair.jsonl": [
            {"id": 1, "method": "lint", "params": dict(crossed, sarif=True)},
            {"id": 2, "method": "repair", "params": crossed},
            {"id": 3, "method": "shutdown", "params": {}},
        ],
        "errors.jsonl": [
            {"raw": "{definitely not json"},
            {"id": 1, "method": "mystery", "params": {}},
            {"id": 2, "method": "analyze", "params": {"uri": "mem:ghost"}},
            {"id": 3, "method": "shutdown", "params": {}},
        ],
        "cancel_status.jsonl": [
            {
                "id": 1,
                "method": "didOpen",
                "params": {"uri": "mem:crossed", "text": CROSSED_SRC},
            },
            # Nothing queued or running on the synchronous path: the
            # unknown-id shape is the deterministic one.
            {"id": 2, "method": "cancel", "params": {"id": 99}},
            {"id": 3, "method": "cancel", "params": {}},
            {"id": 4, "method": "status", "params": {}},
            {"id": 5, "method": "shutdown", "params": {}},
        ],
    }


def drive_transcript(requests):
    server = make_server()
    exchanges = []
    for req in requests:
        line = req["raw"] if "raw" in req else json.dumps(req)
        reply = server.handle_line(line)
        exchanges.append({"request": req, "response": normalize(reply)})
    return exchanges


@pytest.mark.parametrize("name", sorted(transcript_requests()))
def test_golden_transcript(name):
    requests = transcript_requests()[name]
    exchanges = drive_transcript(requests)
    path = GOLDEN_DIR / name
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            "".join(json.dumps(x, sort_keys=True) + "\n" for x in exchanges)
        )
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden transcript {path}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    expected = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    assert exchanges == expected


# ---------------------------------------------------------------------------
# stdio subprocess smoke


def run_daemon(requests, *extra_args, timeout=180):
    env = dict(os.environ)
    root = Path(__file__).parent.parent
    env["PYTHONPATH"] = str(root / "src")
    lines = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.server", *extra_args],
        input=lines,
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
        cwd=root,
    )
    replies = [json.loads(l) for l in proc.stdout.splitlines()]
    return proc, replies


class TestStdioSmoke:
    def test_full_round_trip(self, tmp_path):
        proc, replies = run_daemon(
            [
                {
                    "id": 1,
                    "method": "analyze",
                    "params": {"uri": "mem:a", "text": CROSSED_SRC},
                },
                {"id": 2, "method": "analyze", "params": {"uri": "mem:a"}},
                {"id": 3, "method": "status", "params": {}},
                {"id": 4, "method": "shutdown", "params": {}},
            ],
            "--cache-dir",
            str(tmp_path),
        )
        assert proc.returncode == 0
        assert proc.stderr == ""
        by_id = {r["id"]: r for r in replies}
        assert by_id[1]["result"]["cache"] == "computed"
        assert by_id[2]["result"]["cache"] == "memory"
        assert by_id[3]["result"]["counters"]["cache_hits"] == 1
        assert by_id[4]["result"]["ok"] is True

        # Same store, new process: resident across restarts.
        proc2, replies2 = run_daemon(
            [
                {
                    "id": 1,
                    "method": "analyze",
                    "params": {"uri": "mem:a", "text": CROSSED_SRC},
                },
                {"id": 2, "method": "shutdown", "params": {}},
            ],
            "--cache-dir",
            str(tmp_path),
        )
        assert proc2.returncode == 0
        assert replies2[0]["result"]["cache"] == "store"

    def test_eof_is_graceful(self):
        proc, replies = run_daemon(
            [{"id": 1, "method": "ping", "params": {}}], "--no-store"
        )
        assert proc.returncode == 0
        assert replies[0]["result"] == {"pong": True}

    def test_stdout_is_protocol_pure(self, tmp_path):
        proc, replies = run_daemon(
            [
                {
                    "id": 1,
                    "method": "analyze",
                    "params": {"uri": "mem:a", "text": CROSSED_SRC},
                },
                {"id": "bad", "method": "nope", "params": {}},
                {"id": 2, "method": "shutdown", "params": {}},
            ],
            "--no-store",
        )
        assert proc.returncode == 0
        # Every stdout line parses and carries the envelope keys.
        assert len(replies) == 3
        for reply in replies:
            assert set(reply) <= {"id", "result", "error"}

    def test_multi_worker_round_trip(self):
        # Responses may arrive out of order with a real pool; the
        # envelope ids are the correlation mechanism.
        proc, replies = run_daemon(
            [
                {
                    "id": 1,
                    "method": "analyze",
                    "params": {"uri": "mem:a", "text": CROSSED_SRC},
                },
                {
                    "id": 2,
                    "method": "analyze",
                    "params": {"uri": "mem:b", "text": HANDSHAKE_SRC},
                },
                {"id": 3, "method": "shutdown", "params": {}},
            ],
            "--no-store",
            "--workers",
            "2",
        )
        assert proc.returncode == 0
        by_id = {r["id"]: r for r in replies}
        assert len(by_id) == 3
        assert (
            by_id[1]["result"]["report"]["deadlock"]["verdict"]
            == "possible-deadlock"
        )
        assert (
            by_id[2]["result"]["report"]["deadlock"]["verdict"]
            == "certified-deadlock-free"
        )
        assert by_id[3]["result"]["ok"] is True


# ---------------------------------------------------------------------------
# fair scheduler


def sched_entry(method, id, client="default", respond=None):
    from repro.server.protocol import Request
    from repro.server.scheduler import ScheduledRequest

    return ScheduledRequest(
        request=Request(id=id, method=method, params={}),
        client=client,
        respond=respond or (lambda reply: None),
    )


class TestFairScheduler:
    def test_interactive_dispatches_before_batch(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler()
        sched.submit(sched_entry("batch", 1))
        sched.submit(sched_entry("analyze", 2))
        sched.submit(sched_entry("lint", 3))
        order = [sched.take().request.id for _ in range(3)]
        assert order == [2, 3, 1]

    def test_round_robin_across_clients(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler()
        for i in range(3):
            sched.submit(sched_entry("analyze", f"a{i}", client="alice"))
        for i in range(2):
            sched.submit(sched_entry("analyze", f"b{i}", client="bob"))
        order = [sched.take().request.id for _ in range(5)]
        # 1:1 interleave, not alice's arrival burst first.
        assert order == ["a0", "b0", "a1", "b1", "a2"]

    def test_fifo_within_one_client(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler()
        for i in range(5):
            sched.submit(sched_entry("analyze", i))
        assert [sched.take().request.id for _ in range(5)] == list(range(5))

    def test_bounded_queue_rejects_overflow(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler(max_pending=2)
        assert sched.submit(sched_entry("analyze", 1))
        assert sched.submit(sched_entry("analyze", 2))
        assert not sched.submit(sched_entry("analyze", 3))
        sched.take()
        assert sched.submit(sched_entry("analyze", 4))

    def test_cancel_removes_queued_entry(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler()
        sched.submit(sched_entry("analyze", 1))
        sched.submit(sched_entry("analyze", 2))
        entry = sched.cancel("default", 1)
        assert entry is not None and entry.cancelled.is_set()
        assert sched.cancel("default", 99) is None
        assert sched.cancel("other-client", 2) is None
        assert sched.take().request.id == 2
        assert sched.depth() == 0

    def test_close_drains_then_returns_none(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler()
        sched.submit(sched_entry("analyze", 1))
        sched.close()
        assert not sched.submit(sched_entry("analyze", 2))
        assert sched.take().request.id == 1
        assert sched.take() is None

    def test_snapshot_shape(self):
        from repro.server.scheduler import FairScheduler

        sched = FairScheduler(max_pending=9)
        sched.submit(sched_entry("analyze", 1, client="alice"))
        sched.submit(sched_entry("batch", 2, client="alice"))
        snap = sched.snapshot()
        assert snap["pending"] == 2
        assert snap["max_pending"] == 9
        assert snap["levels"] == [{"alice": 1}, {"alice": 1}]


# ---------------------------------------------------------------------------
# concurrent daemon: worker pool, cancellation, fairness end to end


def submit_request(server, method, params=None, id=1, client=None):
    """Submit through the pool; returns the (thread-safe) reply box."""
    import threading

    from repro.server.protocol import Request

    box = {}
    done = threading.Event()

    def respond(reply):
        box["reply"] = reply
        done.set()

    box["done"] = done
    server.submit(
        Request(id=id, method=method, params=params or {}),
        client=client,
        respond=respond,
    )
    return box


class TestConcurrentDaemon:
    def test_pool_serves_concurrent_clients(self):
        server = AnalysisServer(session=Session(store=None), workers=4)
        server.start()
        total = 12
        boxes = []
        try:
            for i in range(total):
                client = f"c{i % 3}"
                boxes.append(
                    submit_request(
                        server,
                        "analyze",
                        {"uri": f"mem:{client}", "text": CROSSED_SRC},
                        id=i,
                        client=client,
                    )
                )
            for box in boxes:
                assert box["done"].wait(timeout=300)
        finally:
            server.drain()
        for i, box in enumerate(boxes):
            reply = box["reply"]
            assert reply["id"] == i
            verdict = reply["result"]["report"]["deadlock"]["verdict"]
            assert verdict == "possible-deadlock"
        # Thread-safe counters: exact, not approximate.
        assert server.session.counters["requests"] == total

    def test_cancel_queued_request_answers_1004(self):
        from repro.server.protocol import REQUEST_CANCELLED

        server = AnalysisServer(session=Session(store=None), workers=1)
        import threading

        entered, release = threading.Event(), threading.Event()

        def slow(params, client):
            entered.set()
            release.wait(timeout=30)
            return {"slow": True}

        server._handlers["lint"] = slow
        server.start()
        try:
            first = submit_request(server, "lint", id=1)
            assert entered.wait(timeout=30)
            # Queued behind the blocked worker; then cancelled.
            stale = submit_request(
                server, "analyze", {"uri": "mem:a", "text": CROSSED_SRC}, id=2
            )
            cancel = submit_request(server, "cancel", {"id": 2}, id=3)
            # cancel runs on the submitting thread: answered already,
            # without waiting for the busy worker.
            assert cancel["done"].wait(timeout=30)
            assert cancel["reply"]["result"] == {
                "id": 2,
                "cancelled": True,
                "state": "queued",
            }
            assert stale["done"].is_set()
            assert (
                stale["reply"]["error"]["code"] == REQUEST_CANCELLED
            )
            # The replacement is not blocked by the cancelled one.
            fresh = submit_request(
                server,
                "analyze",
                {"uri": "mem:a", "text": HANDSHAKE_SRC},
                id=4,
            )
            release.set()
            assert first["done"].wait(timeout=30)
            assert fresh["done"].wait(timeout=300)
            verdict = fresh["reply"]["result"]["report"]["deadlock"]["verdict"]
            assert verdict == "certified-deadlock-free"
        finally:
            release.set()
            server.drain()
        assert server.session.counters["cancelled"] == 1

    def test_cancel_in_flight_discards_result(self):
        from repro.server.protocol import REQUEST_CANCELLED

        server = AnalysisServer(session=Session(store=None), workers=1)
        import threading

        entered, release = threading.Event(), threading.Event()

        def slow(params, client):
            entered.set()
            release.wait(timeout=30)
            return {"slow": True}

        server._handlers["lint"] = slow
        server.start()
        try:
            running = submit_request(server, "lint", id=1)
            assert entered.wait(timeout=30)
            cancel = submit_request(server, "cancel", {"id": 1}, id=2)
            assert cancel["reply"]["result"] == {
                "id": 1,
                "cancelled": True,
                "state": "running",
            }
            release.set()
            assert running["done"].wait(timeout=30)
            # The handler finished, but the caller asked us not to
            # deliver: the reply is the cancellation, not the result.
            assert running["reply"]["error"]["code"] == REQUEST_CANCELLED
        finally:
            release.set()
            server.drain()

    def test_cancel_unknown_id_reports_false(self):
        reply = rpc(make_server(), "cancel", {"id": 404})
        assert reply["result"] == {
            "id": 404,
            "cancelled": False,
            "state": "unknown",
        }

    def test_cancel_without_id_is_invalid_params(self):
        reply = rpc(make_server(), "cancel", {})
        assert reply["error"]["code"] == INVALID_PARAMS

    def test_batch_yields_to_interactive(self):
        server = AnalysisServer(session=Session(store=None), workers=1)
        import threading

        entered, release = threading.Event(), threading.Event()
        order = []
        order_lock = threading.Lock()

        def slow(params, client):
            entered.set()
            release.wait(timeout=30)
            return {"slow": True}

        def quick(tag):
            def handler(params, client):
                with order_lock:
                    order.append(tag)
                return {"tag": tag}

            return handler

        server._handlers["lint"] = slow
        server._handlers["batch"] = quick("batch")
        server._handlers["analyze"] = quick("analyze")
        server.start()
        try:
            first = submit_request(server, "lint", id=1)
            assert entered.wait(timeout=30)
            # batch arrives first, analyze second — analyze still wins.
            batch = submit_request(server, "batch", id=2)
            inter = submit_request(server, "analyze", id=3)
            release.set()
            for box in (first, batch, inter):
                assert box["done"].wait(timeout=30)
        finally:
            release.set()
            server.drain()
        assert order == ["analyze", "batch"]

    def test_drain_answers_everything_queued(self):
        server = AnalysisServer(session=Session(store=None), workers=2)
        server.start()
        boxes = [
            submit_request(server, "ping", id=i, client=f"c{i % 2}")
            for i in range(10)
        ]
        server.drain()
        for box in boxes:
            assert box["done"].is_set()
            assert box["reply"]["result"] == {"pong": True}

    def test_submit_after_shutdown_answers_1003(self):
        from repro.server.protocol import SHUTTING_DOWN

        server = AnalysisServer(session=Session(store=None), workers=1)
        server.shutting_down.set()
        box = submit_request(server, "ping", id=1)
        assert box["reply"]["error"]["code"] == SHUTTING_DOWN

    def test_overflow_answers_server_busy(self):
        from repro.server.protocol import SERVER_BUSY

        # No workers started: the queue only fills.
        server = AnalysisServer(
            session=Session(store=None), queue_size=2, workers=1
        )
        submit_request(server, "ping", id=1)
        submit_request(server, "ping", id=2)
        box = submit_request(server, "ping", id=3)
        assert box["reply"]["error"]["code"] == SERVER_BUSY
        server.scheduler.close()


# ---------------------------------------------------------------------------
# per-client namespaces


class TestClientNamespaces:
    def test_same_uri_isolated_per_client(self):
        session = Session(store=None)
        session.open_document("mem:a", CROSSED_SRC, client="alice")
        session.open_document("mem:a", HANDSHAKE_SRC, client="bob")
        p1, _ = session.analyze_document(uri="mem:a", client="alice")
        p2, _ = session.analyze_document(uri="mem:a", client="bob")
        assert p1["deadlock"]["verdict"] == "possible-deadlock"
        assert p2["deadlock"]["verdict"] == "certified-deadlock-free"
        status = session.status()
        assert status["clients"] == {
            "alice": ["mem:a"],
            "bob": ["mem:a"],
        }
        # The flat single-client view shows only the default namespace.
        assert status["documents"] == []

    def test_result_cache_crosses_namespaces(self):
        session = Session(store=None)
        _, c1 = session.analyze_document(
            uri="mem:a", text=CROSSED_SRC, client="alice"
        )
        _, c2 = session.analyze_document(
            uri="mem:b", text=CROSSED_SRC, client="bob"
        )
        # Content-addressed: bob is warm from alice's work.
        assert (c1, c2) == ("computed", "memory")

    def test_close_is_scoped_to_client(self):
        session = Session(store=None)
        session.open_document("mem:a", CROSSED_SRC, client="alice")
        session.open_document("mem:a", CROSSED_SRC, client="bob")
        assert session.close_document("mem:a", client="alice")
        assert not session.close_document("mem:a", client="alice")
        assert "mem:a" in session._docs("bob")

    def test_request_client_field_routes_namespace(self):
        server = make_server()
        server.handle_line(
            json.dumps(
                {
                    "id": 1,
                    "method": "didOpen",
                    "client": "alice",
                    "params": {"uri": "mem:x", "text": CROSSED_SRC},
                }
            )
        )
        # bob never opened mem:x — different namespace, unknown doc.
        bob = server.handle_line(
            json.dumps(
                {
                    "id": 2,
                    "method": "analyze",
                    "client": "bob",
                    "params": {"uri": "mem:x"},
                }
            )
        )
        assert bob["error"]["code"] == INVALID_PARAMS
        alice = server.handle_line(
            json.dumps(
                {
                    "id": 3,
                    "method": "analyze",
                    "client": "alice",
                    "params": {"uri": "mem:x"},
                }
            )
        )
        assert alice["result"]["cache"] == "computed"

    def test_non_string_client_rejected(self):
        reply = make_server().handle_line(
            '{"id": 1, "method": "ping", "client": 7, "params": {}}'
        )
        assert reply["error"]["code"] == INVALID_REQUEST


# ---------------------------------------------------------------------------
# the timeout bugfix: honored for every algorithm, not just exact


class TestTimeoutHonored:
    def test_refined_timeout_goes_through_pool(self, monkeypatch):
        # Before the fix, ``timeout`` on a non-exact request was
        # silently dropped (``if timeout is not None and is_exact``);
        # now every budgeted request takes the preemptive pool path.
        from repro.farm.pool import STATUS_TIMEOUT, WorkOutcome
        from repro.server import session as session_mod

        seen = {}

        def fake_run_pool(items, jobs, timeout):
            seen["jobs"], seen["timeout"] = jobs, timeout
            return [
                WorkOutcome(
                    label=items[0].label,
                    status=STATUS_TIMEOUT,
                    error="timed out",
                )
            ]

        monkeypatch.setattr(session_mod, "run_pool", fake_run_pool)
        reply = rpc(
            make_server(),
            "analyze",
            {
                "uri": "mem:a",
                "text": CROSSED_SRC,
                "algorithm": "refined",
                "timeout": 0.25,
            },
        )
        assert reply["error"]["code"] == REQUEST_TIMEOUT
        assert seen["jobs"] > 1
        assert seen["timeout"] == 0.25

    def test_refined_with_generous_timeout_completes(self):
        reply = rpc(
            make_server(),
            "analyze",
            {"uri": "mem:a", "text": CROSSED_SRC, "timeout": 120},
        )
        assert reply["result"]["cache"] == "computed"
        verdict = reply["result"]["report"]["deadlock"]["verdict"]
        assert verdict == "possible-deadlock"


# ---------------------------------------------------------------------------
# HTTP front end: threading, namespaces, graceful SIGTERM


def http_json(port, path="/rpc", body=None, headers=None, timeout=30):
    import urllib.request

    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        url, data=data, headers=dict(headers or {})
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


class TestHttpConcurrency:
    def _serving(self, server):
        import threading

        from repro.server.httpd import make_http_server

        httpd = make_http_server(server, port=0)
        thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        return httpd, thread

    def test_healthz_answers_during_slow_analyze(self):
        import threading

        # Regression: the single-threaded HTTPServer serialized
        # /healthz behind a long /rpc analyze, so any health checker
        # read a busy daemon as a dead one.
        server = AnalysisServer(session=Session(store=None), workers=1)
        entered, release = threading.Event(), threading.Event()

        def slow(params, client):
            entered.set()
            release.wait(timeout=30)
            return {"slow": True}

        server._handlers["analyze"] = slow
        server.start()
        httpd, thread = self._serving(server)
        port = httpd.server_address[1]
        try:
            poster = threading.Thread(
                target=http_json,
                args=(port,),
                kwargs={
                    "body": {"id": 1, "method": "analyze", "params": {}}
                },
                daemon=True,
            )
            poster.start()
            assert entered.wait(timeout=30)
            # The analyze is parked on a worker; liveness and status
            # must still answer from their own connection threads.
            assert http_json(port, "/healthz", timeout=5) == {"ok": True}
            status = http_json(port, "/status", timeout=5)
            assert status["server"]["busy"] == 1
        finally:
            release.set()
            httpd.shutdown()
            server.drain()
            httpd.server_close()

    def test_rpc_through_pool_and_client_header(self):
        server = AnalysisServer(session=Session(store=None), workers=2)
        server.start()
        httpd, thread = self._serving(server)
        port = httpd.server_address[1]
        try:
            opened = http_json(
                port,
                body={
                    "id": 1,
                    "method": "didOpen",
                    "params": {"uri": "mem:x", "text": CROSSED_SRC},
                },
                headers={"X-Repro-Client": "alice"},
            )
            assert opened["result"]["opened"] is True
            # Same URI, different namespace: bob cannot see it.
            bob = http_json(
                port,
                body={
                    "id": 2,
                    "method": "analyze",
                    "params": {"uri": "mem:x"},
                },
                headers={"X-Repro-Client": "bob"},
            )
            assert bob["error"]["code"] == INVALID_PARAMS
            alice = http_json(
                port,
                body={
                    "id": 3,
                    "method": "analyze",
                    "params": {"uri": "mem:x"},
                },
                headers={"X-Repro-Client": "alice"},
            )
            assert alice["result"]["cache"] == "computed"
            # The body-level "client" field outranks the header.
            body_wins = http_json(
                port,
                body={
                    "id": 4,
                    "method": "analyze",
                    "client": "alice",
                    "params": {"uri": "mem:x"},
                },
                headers={"X-Repro-Client": "bob"},
            )
            assert body_wins["result"]["cache"] == "memory"
        finally:
            httpd.shutdown()
            server.drain()
            httpd.server_close()

    def test_sync_fallback_without_pool(self):
        # make_http_server without start(): requests served on the
        # connection thread, same payloads (older embedding pattern).
        server = make_server()
        httpd, thread = self._serving(server)
        port = httpd.server_address[1]
        try:
            reply = http_json(
                port,
                body={
                    "id": 1,
                    "method": "analyze",
                    "params": {"uri": "mem:a", "text": CROSSED_SRC},
                },
            )
            assert reply["result"]["cache"] == "computed"
        finally:
            httpd.shutdown()
            httpd.server_close()


class TestHttpSigterm:
    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        import signal as signal_mod
        import socket
        import time as time_mod
        import urllib.error

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        env = dict(os.environ)
        root = Path(__file__).parent.parent
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--http",
                f"127.0.0.1:{port}",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path),
                "--verbose",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=root,
        )
        try:
            deadline = time_mod.time() + 60
            up = False
            while time_mod.time() < deadline:
                try:
                    if http_json(port, "/healthz", timeout=2) == {
                        "ok": True
                    }:
                        up = True
                        break
                except (urllib.error.URLError, OSError):
                    time_mod.sleep(0.1)
            assert up, "daemon never came up"
            reply = http_json(
                port,
                body={
                    "id": 1,
                    "method": "analyze",
                    "params": {"uri": "mem:a", "text": CROSSED_SRC},
                },
                timeout=120,
            )
            assert reply["result"]["cache"] == "computed"
            proc.send_signal(signal_mod.SIGTERM)
            out, err = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        # Graceful: exit 0, stdout untouched, verbose shutdown note
        # confirming the drain-and-flush path actually ran.
        assert proc.returncode == 0
        assert out == ""
        assert "stopped" in err
        # Write-through store kept the analysis; a fresh daemon is warm.
        assert list(tmp_path.glob("??/*.pkl"))

"""Command-line interface tests."""

import json
import re
import subprocess
import sys

import pytest

from repro.cli import main
from tests.conftest import CROSSED_SRC, HANDSHAKE_SRC


@pytest.fixture
def handshake_file(tmp_path):
    path = tmp_path / "handshake.adl"
    path.write_text(HANDSHAKE_SRC)
    return path


@pytest.fixture
def crossed_file(tmp_path):
    path = tmp_path / "crossed.adl"
    path.write_text(CROSSED_SRC)
    return path


class TestExitCodes:
    def test_certified_returns_zero(self, handshake_file):
        assert main([str(handshake_file)]) == 0

    def test_possible_deadlock_returns_one(self, crossed_file):
        assert main([str(crossed_file)]) == 1

    def test_missing_file_returns_two(self, capsys):
        assert main(["/nonexistent.adl"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_parse_error_returns_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.adl"
        bad.write_text("program ;")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestOutput:
    def test_human_readable(self, handshake_file, capsys):
        main([str(handshake_file)])
        out = capsys.readouterr().out
        assert "certified-deadlock-free" in out
        assert "certified-stall-free" in out

    def test_json_output(self, crossed_file, capsys):
        main([str(crossed_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "crossed"
        assert payload["deadlock"]["verdict"] == "possible-deadlock"
        assert payload["deadlock"]["evidence"]

    def test_algorithm_selection(self, handshake_file, capsys):
        main([str(handshake_file), "--algorithm", "naive", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock"]["algorithm"] == "naive-clg"

    def test_simulate_flag(self, crossed_file, capsys):
        main([str(crossed_file), "--simulate", "5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulation"]["runs"] == 5
        assert payload["simulation"]["deadlock_runs"] == 5

    def test_backend_flag_is_bit_exact(self, crossed_file, capsys):
        payloads = {}
        for backend in ("index", "reference"):
            main(
                [
                    str(crossed_file),
                    "--algorithm",
                    "exact",
                    "--confirm",
                    "--backend",
                    backend,
                    "--json",
                ]
            )
            payloads[backend] = json.loads(capsys.readouterr().out)
        assert payloads["index"] == payloads["reference"]
        assert (
            payloads["index"]["deadlock"]["verdict"] == "possible-deadlock"
        )
        assert (
            payloads["index"]["confirmation"]["outcome"]
            == "confirmed-deadlock"
        )

    def test_unknown_backend_rejected(self, crossed_file, capsys):
        with pytest.raises(SystemExit):
            main([str(crossed_file), "--backend", "turbo"])
        assert "invalid choice" in capsys.readouterr().err


class TestArtifacts:
    def test_dot_outputs(self, handshake_file, tmp_path):
        sync_dot = tmp_path / "sync.dot"
        clg_dot = tmp_path / "clg.dot"
        main(
            [
                str(handshake_file),
                "--dot",
                str(sync_dot),
                "--clg-dot",
                str(clg_dot),
            ]
        )
        assert sync_dot.read_text().startswith("digraph")
        assert clg_dot.read_text().startswith("digraph")

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(HANDSHAKE_SRC))
        assert main(["-"]) == 0


class TestConfirm:
    def test_confirm_confirms_real_deadlock(self, crossed_file, capsys):
        code = main([str(crossed_file), "--confirm", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["confirmation"]["outcome"] == "confirmed-deadlock"
        assert payload["confirmation"]["witness"]["steps"] == 0

    def test_confirm_refutes_false_alarm(self, tmp_path, capsys):
        # naive reports a spurious cycle on the two-round handshake;
        # confirmation refutes it and the exit code flips to success
        src = (
            "program p;\n"
            "task t1 is begin send t2.s1; accept s2; "
            "send t2.s1; accept s2; end;\n"
            "task t2 is begin accept s1; send t1.s2; "
            "accept s1; send t1.s2; end;\n"
        )
        path = tmp_path / "tworound.adl"
        path.write_text(src)
        code = main([str(path), "--algorithm", "naive", "--confirm", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock"]["verdict"] == "possible-deadlock"
        assert payload["confirmation"]["outcome"] == "false-alarm-refuted"
        assert code == 0

    def test_confirm_noop_when_certified(self, handshake_file, capsys):
        code = main([str(handshake_file), "--confirm", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert (
            payload["confirmation"]["outcome"]
            == "not-needed-already-certified"
        )

    def test_confirm_respects_state_limit(self, tmp_path, capsys):
        # the naive false alarm from above, but with a state budget too
        # small to refute it: confirmation must stop at the budget
        # instead of exploring the full wave space
        src = (
            "program p;\n"
            "task t1 is begin send t2.s1; accept s2; "
            "send t2.s1; accept s2; end;\n"
            "task t2 is begin accept s1; send t1.s2; "
            "accept s1; send t1.s2; end;\n"
        )
        path = tmp_path / "tworound.adl"
        path.write_text(src)
        code = main(
            [
                str(path),
                "--algorithm",
                "naive",
                "--confirm",
                "--state-limit",
                "1",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert (
            payload["confirmation"]["outcome"]
            == "inconclusive-budget-exhausted"
        )
        assert payload["confirmation"]["states_budget"] == 1
        assert code == 1  # verdict stays possible-deadlock


class TestStats:
    def test_stats_human(self, handshake_file, capsys):
        main([str(handshake_file), "--stats"])
        out = capsys.readouterr().out
        assert "CLG:" in out and "wave-space" in out

    def test_stats_json(self, handshake_file, capsys):
        main([str(handshake_file), "--stats", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["tasks"] == 2


class TestObservability:
    def test_trace_prints_span_tree(self, handshake_file, capsys):
        main([str(handshake_file), "--trace"])
        out = capsys.readouterr().out
        assert "analyze.parse" in out
        assert "analyze.deadlock" in out
        assert "ms" in out

    def test_trace_with_json_keeps_stdout_parseable(
        self, handshake_file, capsys
    ):
        main([str(handshake_file), "--trace", "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert "analyze.parse" in captured.err
        assert payload["metrics"]["span_seconds"]["analyze"] > 0

    def test_metrics_out_json(self, handshake_file, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        main([str(handshake_file), "--json", "--metrics-out", str(out_file)])
        payload = json.loads(capsys.readouterr().out)
        snapshot = json.loads(out_file.read_text())
        # per-phase wall times present in both the file and the report
        for phase in ("analyze.parse", "analyze.sync_graph"):
            assert snapshot["span_seconds"][phase] >= 0
        assert payload["metrics"]["counters"] == snapshot["counters"]
        assert (
            snapshot["counters"][
                "refined.pruned_nodes{rule=sequenceable}"
            ]
            > 0
        )

    def test_metrics_out_prometheus(self, handshake_file, tmp_path):
        out_file = tmp_path / "m.prom"
        main([str(handshake_file), "--metrics-out", str(out_file)])
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+$"
        )
        lines = out_file.read_text().splitlines()
        assert lines
        for line in lines:
            assert line_re.match(line), f"bad exposition line: {line!r}"

    def test_obs_disabled_without_flags(self, handshake_file, capsys):
        main([str(handshake_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload

    def test_stats_and_obs_metrics_share_key(
        self, handshake_file, tmp_path, capsys
    ):
        main(
            [
                str(handshake_file),
                "--json",
                "--stats",
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["tasks"] == 2  # graph metrics
        assert "counters" in payload["metrics"]  # obs snapshot

    def test_cli_smoke_subprocess(self, handshake_file, tmp_path):
        """End-to-end: the installed entry point with --trace/--metrics-out."""
        out_file = tmp_path / "smoke.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(handshake_file),
                "--trace",
                "--metrics-out",
                str(out_file),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "certified-deadlock-free" in proc.stdout
        assert "analyze.parse" in proc.stdout  # span tree
        snapshot = json.loads(out_file.read_text())
        assert snapshot["counters"]["analyze.runs"] == 1


STALLY_SRC = """\
program stally;
task t1 is
begin
    send t2.orphan;
    null;
end;
task t2 is
begin
    null;
end;
"""


@pytest.fixture
def stally_file(tmp_path):
    path = tmp_path / "stally.adl"
    path.write_text(STALLY_SRC)
    return path


class TestLintMode:
    def test_text_output_and_default_threshold(self, stally_file, capsys):
        # warnings only, default --fail-on error -> exit 0
        assert main([str(stally_file), "--lint"]) == 0
        out = capsys.readouterr().out
        assert f"{stally_file}:4:5: warning:" in out
        assert "[ADL001]" in out
        assert "0 error(s)" in out

    def test_fail_on_warning(self, stally_file):
        assert main([str(stally_file), "--lint", "--fail-on", "warning"]) == 1

    def test_clean_program_passes_any_threshold(self, handshake_file):
        assert (
            main([str(handshake_file), "--lint", "--fail-on", "note"]) == 0
        )

    def test_json_output(self, stally_file, capsys):
        main([str(stally_file), "--lint", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["lint_schema_version"] == 1
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert {"ADL001", "ADL011"} <= rules
        for diag in payload["diagnostics"]:
            assert diag["span"]["line"] >= 1
            assert diag["span"]["column"] >= 1

    def test_sarif_file_emission(self, stally_file, tmp_path):
        from repro.lint import validate_sarif_shape

        out = tmp_path / "lint.sarif"
        main([str(stally_file), "--lint", "--sarif", str(out)])
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert validate_sarif_shape(doc) == []
        assert doc["runs"][0]["results"]

    def test_disable_and_select(self, stally_file, capsys):
        main([str(stally_file), "--lint", "--disable", "ADL001,ADL011"])
        assert "[ADL" not in capsys.readouterr().out
        main([str(stally_file), "--lint", "--select", "unmatched-send"])
        out = capsys.readouterr().out
        assert "[ADL001]" in out and "[ADL011]" not in out

    def test_unknown_rule_exits_two(self, stally_file, capsys):
        assert main([str(stally_file), "--lint", "--disable", "NOPE"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_parse_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.adl"
        bad.write_text("program ;")
        assert main([str(bad), "--lint"]) == 2
        assert "error" in capsys.readouterr().err

    def test_lint_metrics_out(self, stally_file, tmp_path):
        out = tmp_path / "lint-metrics.json"
        main([str(stally_file), "--lint", "--metrics-out", str(out)])
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["lint.runs"] == 1
        assert "lint.diagnostics{rule=ADL001}" in snapshot["counters"]

    def test_analysis_output_unchanged_without_lint(
        self, handshake_file, capsys
    ):
        # the lint flags must not perturb the analysis path
        main([str(handshake_file)])
        baseline = capsys.readouterr().out
        main([str(handshake_file), "--fail-on", "note"])
        assert capsys.readouterr().out == baseline

    def test_lint_smoke_subprocess(self, stally_file, tmp_path):
        """End-to-end: --lint --fail-on warning --sarif via the real entry."""
        sarif_out = tmp_path / "smoke.sarif"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(stally_file),
                "--lint",
                "--fail-on",
                "warning",
                "--sarif",
                str(sarif_out),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        assert "[ADL001]" in proc.stdout
        doc = json.loads(sarif_out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-analyze"


class TestBatchMode:
    @pytest.fixture
    def corpus_dir(self, tmp_path):
        d = tmp_path / "corpus"
        d.mkdir()
        (d / "handshake.adl").write_text(HANDSHAKE_SRC)
        (d / "crossed.adl").write_text(CROSSED_SRC)
        return d

    def test_all_certified_returns_zero(self, handshake_file, tmp_path):
        rc = main(
            [
                "--batch",
                str(handshake_file),
                "--jobs",
                "1",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert rc == 0

    def test_possible_deadlock_returns_one(self, corpus_dir, tmp_path, capsys):
        rc = main(
            [
                "--batch",
                str(corpus_dir),
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "possible-deadlock" in out
        assert "batch: 2 item(s)" in out

    def test_no_sources_matched_returns_two(self, tmp_path, capsys):
        rc = main(["--batch", str(tmp_path / "nothing"), "--no-cache"])
        assert rc == 2
        assert "no ADL sources match" in capsys.readouterr().err

    def test_multiple_sources_without_batch_rejected(
        self, handshake_file, crossed_file, capsys
    ):
        rc = main([str(handshake_file), str(crossed_file)])
        assert rc == 2
        assert "--batch" in capsys.readouterr().err

    def test_warm_rerun_reports_cache_hits(self, corpus_dir, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["--batch", str(corpus_dir), "--jobs", "1", "--cache-dir", cache_dir]
        main(args)
        capsys.readouterr()
        main(args + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 2
        assert all(
            item["cache"] == "hit" for item in payload["item_reports"]
        )

    def test_no_cache_flag(self, corpus_dir, tmp_path, capsys):
        main(["--batch", str(corpus_dir), "--no-cache", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"enabled": False, "hits": 0, "misses": 0}

    def test_jsonl_out(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "report.jsonl"
        main(
            [
                "--batch",
                str(corpus_dir),
                "--no-cache",
                "--jsonl-out",
                str(out),
            ]
        )
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["item", "item", "summary"]
        assert lines[-1]["items"] == 2
        programs = {l["program"] for l in lines[:-1]}
        assert programs == {"handshake", "crossed"}

    def test_batch_metrics_out(self, corpus_dir, tmp_path):
        metrics = tmp_path / "farm-metrics.json"
        main(
            [
                "--batch",
                str(corpus_dir),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics-out",
                str(metrics),
            ]
        )
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["farm.cache.misses"] == 2
        assert snapshot["counters"]["farm.items.analyzed"] == 2

    def test_injected_crash_contained_via_cli(
        self, corpus_dir, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_FARM_INJECT_CRASH", "crossed")
        rc = main(
            ["--batch", str(corpus_dir), "--jobs", "2", "--no-cache", "--json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        by_label = {
            item["label"]: item for item in payload["item_reports"]
        }
        crashed = [i for i in payload["item_reports"] if i["status"] == "crashed"]
        assert len(crashed) == 1
        assert "crossed" in crashed[0]["label"]
        ok = [i for i in payload["item_reports"] if i["status"] == "ok"]
        assert len(ok) == 1

    def test_batch_smoke_subprocess(self, corpus_dir, tmp_path):
        """End-to-end via the real entry point, cold then warm."""
        cache_dir = str(tmp_path / "cache")
        jsonl = tmp_path / "batch.jsonl"
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "--batch",
            str(corpus_dir),
            "--jobs",
            "2",
            "--cache-dir",
            cache_dir,
            "--jsonl-out",
            str(jsonl),
        ]
        cold = subprocess.run(argv, capture_output=True, text=True, timeout=120)
        assert cold.returncode == 1, cold.stderr  # crossed deadlocks
        warm = subprocess.run(argv, capture_output=True, text=True, timeout=120)
        assert warm.returncode == 1, warm.stderr
        summary = [
            json.loads(l) for l in jsonl.read_text().splitlines()
        ][-1]
        assert summary["cache"]["hits"] == 2


class TestJsonStdoutPurity:
    """Under ``--json``, stdout is exactly one parseable JSON document.

    The contract jq-style consumers rely on: whatever mix of flags
    rides along (trace, stats, fixes, batch), human chatter must land
    on stderr, never interleaved with the payload.  Every invocation
    here parses the *complete* stdout — any stray line breaks the
    test.
    """

    @pytest.mark.parametrize(
        "extra",
        [
            [],
            ["--trace"],
            ["--stats"],
            ["--algorithm", "combined-pairs"],
            ["--simulate", "5"],
            ["--confirm"],
            ["--suggest-fixes"],
            ["--lint"],
            ["--lint", "--suggest-fixes"],
            ["--lint", "--trace"],
        ],
    )
    def test_single_json_document(self, crossed_file, capsys, extra):
        main([str(crossed_file), "--json", *extra])
        out = capsys.readouterr().out
        payload = json.loads(out)  # raises on any non-JSON chatter
        assert out.endswith("\n") and not out.rstrip("\n").endswith("\n")
        assert "schema_version" in payload or "lint_schema_version" in payload

    def test_batch_json_is_pure(self, tmp_path, capsys):
        (tmp_path / "a.adl").write_text(CROSSED_SRC)
        (tmp_path / "b.adl").write_text(HANDSHAKE_SRC)
        main(
            ["--batch", str(tmp_path), "--json", "--no-cache", "--trace"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["items"] == 2

    def test_trace_chatter_lands_on_stderr(self, crossed_file, capsys):
        main([str(crossed_file), "--json", "--trace"])
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert "analyze" in captured.err  # the span tree moved aside

    def test_subprocess_stdout_parses_line_safe(self, crossed_file):
        """Belt and braces: outside capsys, with a real pipe, every
        stdout line belongs to the one JSON document."""
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(crossed_file),
                "--json",
                "--suggest-fixes",
                "--trace",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        payload = json.loads(proc.stdout)
        assert payload["repair"]["fixed"] is True
        first = proc.stdout.splitlines()[0]
        assert first == "{"  # indent=2 document, nothing before it

"""Command-line interface tests."""

import json

import pytest

from repro.cli import main
from tests.conftest import CROSSED_SRC, HANDSHAKE_SRC


@pytest.fixture
def handshake_file(tmp_path):
    path = tmp_path / "handshake.adl"
    path.write_text(HANDSHAKE_SRC)
    return path


@pytest.fixture
def crossed_file(tmp_path):
    path = tmp_path / "crossed.adl"
    path.write_text(CROSSED_SRC)
    return path


class TestExitCodes:
    def test_certified_returns_zero(self, handshake_file):
        assert main([str(handshake_file)]) == 0

    def test_possible_deadlock_returns_one(self, crossed_file):
        assert main([str(crossed_file)]) == 1

    def test_missing_file_returns_two(self, capsys):
        assert main(["/nonexistent.adl"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_parse_error_returns_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.adl"
        bad.write_text("program ;")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestOutput:
    def test_human_readable(self, handshake_file, capsys):
        main([str(handshake_file)])
        out = capsys.readouterr().out
        assert "certified-deadlock-free" in out
        assert "certified-stall-free" in out

    def test_json_output(self, crossed_file, capsys):
        main([str(crossed_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "crossed"
        assert payload["deadlock"]["verdict"] == "possible-deadlock"
        assert payload["deadlock"]["evidence"]

    def test_algorithm_selection(self, handshake_file, capsys):
        main([str(handshake_file), "--algorithm", "naive", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock"]["algorithm"] == "naive-clg"

    def test_simulate_flag(self, crossed_file, capsys):
        main([str(crossed_file), "--simulate", "5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulation"]["runs"] == 5
        assert payload["simulation"]["deadlock_runs"] == 5


class TestArtifacts:
    def test_dot_outputs(self, handshake_file, tmp_path):
        sync_dot = tmp_path / "sync.dot"
        clg_dot = tmp_path / "clg.dot"
        main(
            [
                str(handshake_file),
                "--dot",
                str(sync_dot),
                "--clg-dot",
                str(clg_dot),
            ]
        )
        assert sync_dot.read_text().startswith("digraph")
        assert clg_dot.read_text().startswith("digraph")

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(HANDSHAKE_SRC))
        assert main(["-"]) == 0


class TestConfirm:
    def test_confirm_confirms_real_deadlock(self, crossed_file, capsys):
        code = main([str(crossed_file), "--confirm", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["confirmation"]["outcome"] == "confirmed-deadlock"
        assert payload["confirmation"]["witness"]["steps"] == 0

    def test_confirm_refutes_false_alarm(self, tmp_path, capsys):
        # naive reports a spurious cycle on the two-round handshake;
        # confirmation refutes it and the exit code flips to success
        src = (
            "program p;\n"
            "task t1 is begin send t2.s1; accept s2; "
            "send t2.s1; accept s2; end;\n"
            "task t2 is begin accept s1; send t1.s2; "
            "accept s1; send t1.s2; end;\n"
        )
        path = tmp_path / "tworound.adl"
        path.write_text(src)
        code = main([str(path), "--algorithm", "naive", "--confirm", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock"]["verdict"] == "possible-deadlock"
        assert payload["confirmation"]["outcome"] == "false-alarm-refuted"
        assert code == 0

    def test_confirm_noop_when_certified(self, handshake_file, capsys):
        code = main([str(handshake_file), "--confirm", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert (
            payload["confirmation"]["outcome"]
            == "not-needed-already-certified"
        )


class TestStats:
    def test_stats_human(self, handshake_file, capsys):
        main([str(handshake_file), "--stats"])
        out = capsys.readouterr().out
        assert "CLG:" in out and "wave-space" in out

    def test_stats_json(self, handshake_file, capsys):
        main([str(handshake_file), "--stats", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["tasks"] == 2

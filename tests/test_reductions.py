"""CNF, DPLL, and the Theorem 2/3 reductions (paper, Appendix A)."""

import pytest

from repro.lang.validate import validate_program
from repro.reductions.cnf import CNF, Clause, Literal, random_cnf
from repro.reductions.dpll import is_satisfiable, solve
from repro.reductions.theorem2 import (
    build_theorem2_program,
    find_unsequenceable_cycle,
)
from repro.reductions.theorem3 import (
    build_theorem3_graph,
    find_constraint2_cycle,
)

SAT_FORMULA = CNF.of(
    [(1, True), (2, True), (3, False)],
    [(1, True), (3, True), (4, False)],
)

UNSAT_FORMULA = CNF.of(
    *[
        [(1, a), (2, b), (3, c)]
        for a in (True, False)
        for b in (True, False)
        for c in (True, False)
    ]
)


class TestCNF:
    def test_literal_validation(self):
        with pytest.raises(ValueError):
            Literal(0)

    def test_evaluate(self):
        assert SAT_FORMULA.evaluate({1: True, 2: False, 3: False, 4: False})
        assert not UNSAT_FORMULA.evaluate(
            {1: True, 2: True, 3: True}
        )

    def test_num_vars(self):
        assert SAT_FORMULA.num_vars == 4

    def test_random_cnf_shape(self):
        f = random_cnf(5, 8, seed=1)
        assert len(f) == 8
        assert all(len(c) == 3 for c in f)
        assert all(
            len({lit.var for lit in c}) == 3 for c in f
        )

    def test_random_cnf_deterministic(self):
        assert random_cnf(5, 6, seed=2) == random_cnf(5, 6, seed=2)


class TestDPLL:
    def test_sat_model_returned(self):
        model = solve(SAT_FORMULA)
        assert model is not None

    def test_unsat(self):
        assert solve(UNSAT_FORMULA) is None
        assert not is_satisfiable(UNSAT_FORMULA)

    def test_unit_propagation_chain(self):
        f = CNF.of([(1, True)], [(1, False), (2, True)], [(2, False), (3, True)])
        model = solve(f)
        assert model[1] and model[2] and model[3]

    @pytest.mark.parametrize("seed", range(8))
    def test_models_actually_satisfy(self, seed):
        f = random_cnf(6, 15, seed=seed)
        model = solve(f)
        if model is not None:
            total = {v: model.get(v, True) for v in f.variables}
            assert f.evaluate(total)


class TestTheorem2:
    def test_program_validates(self):
        inst = build_theorem2_program(SAT_FORMULA)
        validate_program(inst.program)

    def test_task_inventory(self):
        inst = build_theorem2_program(SAT_FORMULA)
        names = set(inst.program.task_names)
        # 6 literal tasks; positives get anti tasks; vars 3,4 have
        # negative occurrences -> 2 ordering tasks
        assert {"l_1_1", "l_2_3"} <= names
        assert "ord_3" in names and "ord_4" in names
        assert any(n.startswith("anti_") for n in names)

    def test_sat_formula_has_cycle(self):
        inst = build_theorem2_program(SAT_FORMULA)
        assignment = find_unsequenceable_cycle(inst)
        assert assignment is not None
        total = {
            v: assignment.get(v, True) for v in SAT_FORMULA.variables
        }
        assert SAT_FORMULA.evaluate(total)

    def test_unsat_formula_has_no_cycle(self):
        inst = build_theorem2_program(UNSAT_FORMULA)
        assert find_unsequenceable_cycle(inst) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_with_dpll(self, seed):
        f = random_cnf(4, 6, seed=seed)
        inst = build_theorem2_program(f)
        cycle = find_unsequenceable_cycle(inst)
        assert (cycle is not None) == is_satisfiable(f)

    def test_wrong_clause_width_rejected(self):
        with pytest.raises(ValueError):
            build_theorem2_program(CNF.of([(1, True), (2, True)]))


class TestTheorem3:
    def test_graph_shape(self):
        inst = build_theorem3_graph(SAT_FORMULA)
        # 6 literal tasks, 4 nodes each
        assert len(inst.graph.rendezvous_nodes) == 24

    def test_complementary_tops_connected(self):
        inst = build_theorem3_graph(SAT_FORMULA)
        # clause 1 literal 3 is ~x3; clause 2 literal 2 is x3
        neg = inst.tops[(1, 3)]
        pos = inst.tops[(2, 2)]
        assert inst.graph.has_sync_edge(neg, pos)

    def test_sat_formula_has_cycle(self):
        assignment = find_constraint2_cycle(build_theorem3_graph(SAT_FORMULA))
        assert assignment is not None
        total = {
            v: assignment.get(v, True) for v in SAT_FORMULA.variables
        }
        assert SAT_FORMULA.evaluate(total)

    def test_unsat_formula_has_no_cycle(self):
        assert (
            find_constraint2_cycle(build_theorem3_graph(UNSAT_FORMULA))
            is None
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_with_dpll(self, seed):
        f = random_cnf(4, 6, seed=seed)
        cycle = find_constraint2_cycle(build_theorem3_graph(f))
        assert (cycle is not None) == is_satisfiable(f)

"""High-level API tests."""

import pytest

import repro
from repro.analysis.results import StallVerdict, Verdict
from repro.api import ALGORITHMS, analyze, certify_deadlock_free, certify_stall_free
from repro.errors import AnalysisError


class TestAnalyze:
    def test_accepts_source_text(self):
        result = analyze(
            "program p; task a is begin send b.m; end;"
            "task b is begin accept m; end;"
        )
        assert result.deadlock.deadlock_free
        assert result.stall.stall_free

    def test_accepts_parsed_program(self, handshake):
        assert analyze(handshake).deadlock.deadlock_free

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_runs(self, algorithm, crossed):
        result = analyze(crossed, algorithm=algorithm)
        assert not result.deadlock.deadlock_free

    def test_exact_algorithm(self, crossed, handshake):
        assert not analyze(crossed, algorithm="exact").deadlock.deadlock_free
        assert analyze(handshake, algorithm="exact").deadlock.deadlock_free

    def test_unknown_algorithm_rejected(self, handshake):
        with pytest.raises(AnalysisError, match="unknown algorithm"):
            analyze(handshake, algorithm="quantum")

    def test_loops_auto_transformed(self):
        result = analyze(
            "program p;"
            "task a is begin while ? loop send b.m; end loop; end;"
            "task b is begin while ? loop accept m; end loop; end;"
        )
        assert result.deadlock.loops_transformed
        assert result.loops_transformed

    def test_inlining_alone_does_not_report_loops_transformed(self):
        # procedure inlining swaps the program object without touching
        # any loop; loops_transformed must stay False
        result = analyze(
            "program p; procedure q is begin null; end;"
            "task a is begin call q; send b.m; end;"
            "task b is begin accept m; end;"
        )
        assert result.analyzed_program is not result.program
        assert not result.loops_transformed
        assert not result.deadlock.loops_transformed

    def test_validation_included(self):
        result = analyze(
            "program p; task a is begin send b.m; end;"
            "task b is begin null; end;"
        )
        assert result.validation.diagnostics
        assert result.validation.diagnostics[0].rule_id == "ADL001"
        assert result.stall.verdict == StallVerdict.POSSIBLE_STALL

    def test_describe_mentions_verdicts(self, handshake):
        text = analyze(handshake).describe()
        assert Verdict.CERTIFIED_FREE in text
        assert "stall" in text


class TestConvenience:
    def test_certify_deadlock_free(self, handshake, crossed):
        assert certify_deadlock_free(handshake)
        assert not certify_deadlock_free(crossed)

    def test_certify_stall_free(self, handshake, stall_program):
        assert certify_stall_free(handshake)
        assert not certify_stall_free(stall_program)

    def test_package_level_exports(self):
        assert repro.analyze is analyze
        assert repro.__version__


class TestPreparedPipeline:
    """The split front half powering repro.server's resident state."""

    def test_prepare_plus_finish_matches_analyze(self, corpus):
        from repro.api import BACKEND_AWARE, analyze_prepared, prepare
        from repro.reporting import analysis_result_to_dict

        for name, entry in corpus.items():
            source = entry.program
            prep = prepare(source)
            for algorithm in sorted(BACKEND_AWARE):
                direct = analysis_result_to_dict(
                    analyze(source, algorithm=algorithm)
                )
                via_prep = analysis_result_to_dict(
                    analyze_prepared(prep, algorithm=algorithm)
                )
                assert via_prep == direct, (name, algorithm)

    def test_prebuilt_index_and_engine_are_used(self):
        from repro.analysis.index import AnalysisIndex
        from repro.api import analyze_prepared, prepare
        from repro.waves.engine import WaveIndex
        from tests.conftest import CROSSED_SRC

        prep = prepare(CROSSED_SRC)
        index = AnalysisIndex(prep.sync_graph)
        engine = WaveIndex(prep.exact_graph)
        static = analyze_prepared(prep, index=index)
        exact = analyze_prepared(prep, exact=True, engine=engine)
        assert static.deadlock.verdict == "possible-deadlock"
        assert exact.deadlock.verdict == "possible-deadlock"

    def test_index_aware_excludes_k_pairs(self):
        from repro.api import BACKEND_AWARE, INDEX_AWARE

        assert INDEX_AWARE == BACKEND_AWARE - {"k-pairs-3"}

    def test_uri_is_provenance_only(self):
        from repro.reporting import analysis_result_to_dict
        from tests.conftest import CROSSED_SRC

        tagged = analyze(CROSSED_SRC, uri="untitled:buffer-3")
        plain = analyze(CROSSED_SRC)
        assert tagged.uri == "untitled:buffer-3"
        assert plain.uri is None
        # Provenance never leaks into the serialized report.
        assert analysis_result_to_dict(tagged) == analysis_result_to_dict(
            plain
        )

    def test_exact_graph_lazy_on_approximated_unroll(self):
        from repro.api import prepare

        looped = """
        program looper;
        task t1 is begin while true loop send t2.m; end loop; end;
        task t2 is begin while true loop accept m; end loop; end;
        """
        prep = prepare(looped)
        assert prep.approximated
        assert prep.exact_graph is not prep.sync_graph

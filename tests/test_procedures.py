"""Procedures: parsing, validation, inlining, and analysis integration."""

import pytest

import repro
from repro.errors import ValidationError
from repro.interp.runtime import sample_runs
from repro.lang.ast_nodes import Call, ProcDecl, Send
from repro.lang.builder import ProgramBuilder
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program
from repro.transforms.inline import call_graph, has_calls, inline_procedures

WITH_PROCS = """
program procs;

procedure round is
begin
    send server.req;
    accept ok;
end;

task client is
begin
    call round;
    call round;
end;

task server is
begin
    accept req; send client.ok;
    accept req; send client.ok;
end;
"""


class TestParsing:
    def test_procedure_parsed(self):
        p = parse_program(WITH_PROCS)
        assert p.procedure_names == ("round",)
        proc = p.procedure("round")
        assert isinstance(proc.body[0], Send)

    def test_call_statement_parsed(self):
        p = parse_program(WITH_PROCS)
        assert p.task("client").body == (Call("round"), Call("round"))

    def test_pretty_roundtrip_with_procedures(self):
        p = parse_program(WITH_PROCS)
        assert parse_program(pretty(p)) == p

    def test_procedure_lookup_keyerror(self):
        p = parse_program(WITH_PROCS)
        with pytest.raises(KeyError):
            p.procedure("missing")


class TestValidation:
    def test_unknown_call_rejected(self):
        src = "program p; task t is begin call ghost; end;" \
              "task u is begin null; end;"
        with pytest.raises(ValidationError, match="unknown procedure"):
            validate_program(parse_program(src))

    def test_duplicate_procedure_rejected(self):
        src = (
            "program p; procedure a is begin null; end;"
            "procedure a is begin null; end;"
            "task t is begin null; end;"
        )
        with pytest.raises(ValidationError, match="duplicate procedure"):
            validate_program(parse_program(src))

    def test_procedure_send_target_checked(self):
        src = (
            "program p; procedure a is begin send ghost.m; end;"
            "task t is begin call a; end;"
        )
        with pytest.raises(ValidationError, match="unknown task"):
            validate_program(parse_program(src))


class TestInlining:
    def test_simple_inline(self):
        p = parse_program(WITH_PROCS)
        inlined, changed = inline_procedures(p)
        assert changed
        assert not has_calls(inlined)
        assert inlined.procedures == ()
        body = inlined.task("client").body
        assert len(body) == 4  # two rounds of send+accept

    def test_nested_procedures(self):
        src = (
            "program p;"
            "procedure inner is begin send u.m; end;"
            "procedure outer is begin call inner; call inner; end;"
            "task t is begin call outer; end;"
            "task u is begin accept m; accept m; end;"
        )
        inlined, _ = inline_procedures(parse_program(src))
        sends = [
            s for s in inlined.task("t").body if isinstance(s, Send)
        ]
        assert len(sends) == 2

    def test_call_inside_conditional(self):
        src = (
            "program p;"
            "procedure ping is begin send u.m; end;"
            "task t is begin if ? then call ping; end if; end;"
            "task u is begin if ? then accept m; end if; end;"
        )
        inlined, _ = inline_procedures(parse_program(src))
        assert not has_calls(inlined)

    def test_recursion_rejected(self):
        src = (
            "program p;"
            "procedure a is begin call b; end;"
            "procedure b is begin call a; end;"
            "task t is begin call a; end;"
            "task u is begin null; end;"
        )
        with pytest.raises(ValidationError, match="recursive"):
            inline_procedures(parse_program(src))

    def test_self_recursion_rejected(self):
        src = (
            "program p;"
            "procedure a is begin call a; end;"
            "task t is begin call a; end;"
            "task u is begin null; end;"
        )
        with pytest.raises(ValidationError, match="recursive"):
            inline_procedures(parse_program(src))

    def test_no_procedures_identity(self, handshake):
        inlined, changed = inline_procedures(handshake)
        assert not changed
        assert inlined is handshake

    def test_call_graph(self):
        src = (
            "program p;"
            "procedure a is begin call b; end;"
            "procedure b is begin null; end;"
            "task t is begin call a; end;"
            "task u is begin null; end;"
        )
        graph = call_graph(parse_program(src))
        assert graph == {"a": {"b"}, "b": set()}


class TestIntegration:
    def test_analyze_inlines_and_certifies(self):
        result = repro.analyze(WITH_PROCS)
        assert result.deadlock.deadlock_free
        assert result.stall.stall_free
        assert result.deadlock.stats["procedures_inlined"] == 1

    def test_interpreter_runs_calls(self):
        p = parse_program(WITH_PROCS)
        summary = sample_runs(p, runs=20)
        assert summary.completed == 20

    def test_deadlock_through_procedure_detected(self):
        src = (
            "program p;"
            "procedure grab is begin send other.a; accept x; end;"
            "task t is begin call grab; end;"
            "task other is begin send t.x; accept a; end;"
        )
        result = repro.analyze(src)
        assert not result.deadlock.deadlock_free

    def test_builder_procedures(self):
        pb = ProgramBuilder("built")
        with pb.procedure("round") as proc:
            proc.send("srv", "req")
        with pb.task("cli") as t:
            t.call("round")
        with pb.task("srv") as t:
            t.accept("req")
        program = pb.build()
        assert program.procedure("round").body == (
            Send(task="srv", message="req"),
        )
        assert repro.analyze(program).deadlock.deadlock_free

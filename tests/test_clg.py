"""Cycle location graph tests (paper, Section 3.1)."""

import pytest

from repro.lang.parser import parse_program
from repro.syncgraph.build import build_sync_graph
from repro.syncgraph.clg import EdgeKind, build_clg
from repro.syncgraph.dot import clg_to_dot


def clg_for(src):
    sg = build_sync_graph(parse_program(src))
    return sg, build_clg(sg)


class TestConstructionRules:
    def test_split_nodes_per_rendezvous(self, handshake):
        sg = build_sync_graph(handshake)
        clg = build_clg(sg)
        # b, e + 2 nodes per rendezvous
        assert clg.node_count == 2 + 2 * len(sg.rendezvous_nodes)

    def test_internal_edges(self, handshake):
        sg = build_sync_graph(handshake)
        clg = build_clg(sg)
        internals = [e for e in clg.edges() if e.kind == EdgeKind.INTERNAL]
        assert len(internals) == len(sg.rendezvous_nodes)
        for e in internals:
            assert e.src.side == "o" and e.dst.side == "i"
            assert e.src.sync is e.dst.sync

    def test_control_edges_rewire_to_split_sides(self, handshake):
        sg = build_sync_graph(handshake)
        clg = build_clg(sg)
        for e in clg.edges():
            if e.kind != EdgeKind.CONTROL:
                continue
            if e.src is clg.b:
                assert e.dst.side == "o"
            elif e.dst is clg.e:
                assert e.src.side == "i"
            else:
                assert (e.src.side, e.dst.side) == ("i", "o")

    def test_sync_edges_directed_both_ways(self, handshake):
        sg = build_sync_graph(handshake)
        clg = build_clg(sg)
        syncs = [e for e in clg.edges() if e.kind == EdgeKind.SYNC]
        assert len(syncs) == 2 * len(list(sg.sync_edges()))
        for e in syncs:
            assert (e.src.side, e.dst.side) == ("o", "i")

    def test_edge_count_formula(self, handshake):
        sg = build_sync_graph(handshake)
        clg = build_clg(sg)
        n_rdv = len(sg.rendezvous_nodes)
        n_ctrl = sum(1 for _ in sg.control_edges())
        n_sync = len(list(sg.sync_edges()))
        assert clg.edge_count == n_rdv + n_ctrl + 2 * n_sync


class TestCycleDetection:
    def test_handshake_is_acyclic(self, handshake):
        assert not build_clg(build_sync_graph(handshake)).has_cycle()

    def test_crossed_has_cycle(self, crossed):
        assert build_clg(build_sync_graph(crossed)).has_cycle()

    def test_fig4a_sync_only_cycle_removed(self):
        # two senders x two accepts: the raw sync graph has a cycle
        # through sync edges alone; the CLG must not.
        sg, clg = clg_for(
            "program p;"
            "task t1 is begin send t3.m; end;"
            "task t2 is begin send t3.m; end;"
            "task t3 is begin accept m; accept m; end;"
        )
        assert len(list(sg.sync_edges())) == 4
        assert not clg.has_cycle()

    def test_cyclic_components_report_members(self, crossed):
        clg = build_clg(build_sync_graph(crossed))
        comps = clg.cyclic_components()
        assert len(comps) == 1
        # the cycle r1_i -> s1_o -> r2_i -> s2_o touches all four
        # rendezvous nodes, one split node each
        assert len(comps[0]) == 4
        assert {n.sync.label for n in comps[0]} == {
            "(t2,a,+)",
            "(t1,x,-)",
            "(t1,x,+)",
            "(t2,a,-)",
        }

    def test_edge_filter_breaks_cycles(self, crossed):
        clg = build_clg(build_sync_graph(crossed))
        assert not clg.cyclic_components(
            edge_filter=lambda e: e.kind != EdgeKind.SYNC
        )

    def test_node_filter_excludes_nodes(self, crossed):
        sg = build_sync_graph(crossed)
        clg = build_clg(sg)
        victim = sg.rendezvous_nodes[0]
        banned = {clg.in_node(victim), clg.out_node(victim)}
        comps = clg.cyclic_components(
            node_filter=lambda n: n not in banned
        )
        assert not comps


class TestSCC:
    def test_scc_partitions_nodes(self, crossed):
        clg = build_clg(build_sync_graph(crossed))
        comps = clg.strongly_connected_components()
        seen = [n for comp in comps for n in comp]
        assert len(seen) == clg.node_count
        assert len(set(seen)) == clg.node_count

    def test_deep_graph_does_not_recurse(self):
        # long straight-line chain: iterative Tarjan must not overflow
        n = 3000
        body1 = " ".join(f"send t2.m{i};" for i in range(n))
        body2 = " ".join(f"accept m{i};" for i in range(n))
        src = (
            f"program p; task t1 is begin {body1} end; "
            f"task t2 is begin {body2} end;"
        )
        sg = build_sync_graph(parse_program(src))
        clg = build_clg(sg)
        assert not clg.has_cycle()


def test_dot_export(handshake):
    clg = build_clg(build_sync_graph(handshake))
    dot = clg_to_dot(clg)
    assert dot.startswith("digraph")
    assert ":i" in dot and ":o" in dot
